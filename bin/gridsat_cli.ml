(* The gridsat command-line tool.

   gridsat solve problem.cnf                 sequential CDCL
   gridsat solve -m grid -t grads p.cnf      distributed, simulated testbed
   gridsat solve -m par -j 8 p.cnf           parallel on OCaml domains
   gridsat solve --proof p.drup p.cnf        emit + self-check a DRUP proof
   gridsat solve --report r.json --trace t.json p.cnf
                                             telemetry: run report + Chrome trace
   gridsat serve a.cnf b.cnf c.cnf           multi-tenant batch: many jobs,
                                             one shared host pool (admission
                                             control, deadlines, verdict cache)
   gridsat gen php --pigeons 9 --holes 8     generate instances to DIMACS
   gridsat check p.cnf p.drup                verify an UNSAT proof
   gridsat report r.json                     validate + summarise a run report
   gridsat registry                          list the SAT2002 analog rows *)

open Cmdliner

(* ---------- solve ---------- *)

let read_cnf path =
  try Ok (Sat.Dimacs.parse_file path) with
  | Sat.Dimacs.Parse_error e -> Error (Printf.sprintf "%s: %s" path e)
  | Sys_error e -> Error e

let print_stats st =
  Format.printf "@.statistics:@.%a@." Sat.Stats.pp st

(* ---------- telemetry plumbing ---------- *)

let obs_of ~report ~trace = if report <> None || trace <> None then Obs.create () else Obs.disabled

let write_doc path doc =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc

let emit_telemetry ~report ~trace ~obs build_report =
  (match report with
  | None -> ()
  | Some path ->
      write_doc path (build_report ());
      Format.printf "c report written to %s@." path);
  match trace with
  | None -> ()
  | Some path ->
      write_doc path (Obs.Chrome.export (Obs.spans obs));
      Format.printf "c trace written to %s@." path

let solve_sequential ~preprocess ~proof_out ~stats ~budget ~report ~trace cnf =
  let obs = obs_of ~report ~trace in
  let original = cnf in
  let pre = if preprocess then Some (Sat.Preprocess.run cnf) else None in
  let cnf = match pre with Some r -> r.Sat.Preprocess.cnf | None -> cnf in
  (match pre with
  | Some r ->
      Format.printf "c preprocessing: %d -> %d clauses (%d vars eliminated)@."
        r.Sat.Preprocess.clauses_before r.Sat.Preprocess.clauses_after
        r.Sat.Preprocess.eliminated
  | None -> ());
  let config =
    { Sat.Solver.default_config with Sat.Solver.emit_proof = proof_out <> None }
  in
  let solver = Sat.Solver.create ~config ~obs cnf in
  (match Sat.Solver.solve ?budget solver with
  | Sat.Solver.Sat model ->
      let model =
        match pre with Some r -> Sat.Preprocess.extend r model | None -> model
      in
      assert (Sat.Model.satisfies original model);
      Format.printf "s SATISFIABLE@.v %a@." Sat.Model.pp model
  | Sat.Solver.Unsat -> (
      Format.printf "s UNSATISFIABLE@.";
      match proof_out with
      | None -> ()
      | Some path ->
          let proof = Sat.Solver.proof solver in
          (match Sat.Drup.check cnf proof with
          | Ok () -> Format.printf "c proof checked (%d steps)@." (List.length proof)
          | Error e -> Format.printf "c WARNING: proof does not check: %s@." e);
          let oc = open_out path in
          output_string oc (Sat.Drup.to_string proof);
          close_out oc;
          Format.printf "c proof written to %s@." path)
  | Sat.Solver.Budget_exhausted -> Format.printf "s UNKNOWN@.c budget exhausted@."
  | Sat.Solver.Mem_pressure -> Format.printf "s UNKNOWN@.c memory limit reached@.");
  if stats then print_stats (Sat.Solver.stats solver);
  emit_telemetry ~report ~trace ~obs (fun () ->
      Obs.Report.build
        ~meta:[ ("mode", Obs.Json.String "seq") ]
        ~sections:[ ("solver", Sat.Stats.json (Sat.Solver.stats solver)) ]
        ~metrics:(Obs.metrics obs) ~spans:(Obs.spans obs) ());
  0

let testbed_of_string ~hosts = function
  | "uniform" -> Ok (Gridsat_core.Testbed.uniform ~n:hosts ~speed:2000. ())
  | "grads" -> Ok (Gridsat_core.Testbed.grads ())
  | "set2" -> Ok (Gridsat_core.Testbed.set2 ())
  | other -> Error (Printf.sprintf "unknown testbed %S (uniform|grads|set2)" other)

(* A canned deterministic fault plan for demo/CI runs: one host crash,
   one master outage, background message loss and duplication.  Times are
   absolute virtual seconds, early enough to fire on small instances. *)
let chaos_plan ~standby ~partition () =
  let module F = Grid.Fault in
  let master_fault =
    if partition then
      (* instead of killing the primary, cut the standby's site off.  The
         shipping stream stops, the lease expires and the standby promotes
         anyway — leaving a usurped primary on the wrong side of the
         partition whose stale-epoch frames must be observably fenced
         after the heal *)
      F.Partition_site { site = Gridsat_core.Replica.site; from_t = 6.; until_t = 18. }
    else
      (* with a hot standby armed the crashed primary never restarts: the
         standby's lease expiry promotes it instead *)
      F.Crash_master { at = 6.; restart_after = (if standby then infinity else 4.) }
  in
  [
    F.Crash_host { host = 1; at = 2. };
    master_fault;
    F.Drop_messages { src_site = None; dst_site = None; p = 0.1; from_t = 0.; until_t = infinity };
    F.Duplicate_messages { p = 0.05; extra = 0.5; from_t = 0.; until_t = infinity };
  ]

(* Seeded straggler plan for --stragglers: the first [n] hosts slow down
   (or oscillate, with --flaky) early in the run.  Heartbeats and acks
   stay on time, so only the health model's progress-rate signal — and
   hedging — can defend against these. *)
let straggler_plan ~n ~flaky ~seed =
  let module F = Grid.Fault in
  let st = Random.State.make [| seed; 0x51084 |] in
  List.init n (fun i ->
      let host = i + 1 in
      let at = 1. +. Random.State.float st 2. in
      let factor = 6. +. Random.State.float st 4. in
      if flaky then
        F.Flaky_host { host; factor; period = 4. +. Random.State.float st 4.; from_t = at; until_t = infinity }
      else F.Slow_host { host; at; factor })

let print_health_table hm =
  Format.printf "c %-5s %-6s %-10s %9s %9s %9s  %s@." "host" "score" "state" "ack-ewma" "hb-jit"
    "rate" "crash/quar/corr/retry";
  List.iter
    (fun (v : Gridsat_core.Health.view) ->
      Format.printf "c %-5d %-6.2f %-10s %9.3f %9.3f %9.1f  %d/%d/%d/%d@." v.Gridsat_core.Health.v_host
        v.Gridsat_core.Health.v_score v.Gridsat_core.Health.v_state v.Gridsat_core.Health.v_ack_ewma
        v.Gridsat_core.Health.v_hb_jitter v.Gridsat_core.Health.v_rate
        v.Gridsat_core.Health.v_crashes v.Gridsat_core.Health.v_quarantines
        v.Gridsat_core.Health.v_corruptions v.Gridsat_core.Health.v_retries)
    (Gridsat_core.Health.views hm)

let solve_grid ~testbed ~hosts ~stats ~share_len ~timeout ~seed ~chaos ~chaos_partition ~certify
    ~corrupt_p ~hedge ~standby ~ship ~stragglers ~flaky ~share_budget ~journal_quota ~outbox_cap
    ~choke ~health_report ~report ~trace cnf =
  match testbed_of_string ~hosts testbed with
  | Error e ->
      prerr_endline e;
      2
  | Ok _ when ship <> "async" && ship <> "sync" ->
      Printf.eprintf "gridsat: bad --ship %S (async|sync)\n" ship;
      2
  | Ok _ when chaos_partition && not (chaos && standby) ->
      Printf.eprintf "gridsat: --chaos-partition requires both --chaos and --standby\n";
      2
  | Ok testbed ->
      let obs = obs_of ~report ~trace in
      let config =
        {
          Gridsat_core.Config.default with
          Gridsat_core.Config.share_max_len = share_len;
          overall_timeout = timeout;
          split_timeout = 5.;
          share_budget;
          journal_quota;
          outbox_cap;
          seed;
        }
      in
      (* --chaos also turns on the recovery machinery the plan targets:
         light checkpoints, a tight heartbeat lease, eager splitting. *)
      let config =
        if chaos then
          {
            config with
            Gridsat_core.Config.checkpoint = Gridsat_core.Config.Light;
            checkpoint_period = 2.;
            heartbeat_period = 2.;
            suspect_timeout = 8.;
            split_timeout = 1.;
            slice = 0.5;
          }
        else config
      in
      (* --certify implies its own preconditions: integrity framing on and
         clause sharing off (Config.validate rejects anything else) *)
      let config =
        if certify then
          { config with Gridsat_core.Config.certify = true; integrity_checks = true; share_max_len = 0 }
        else config
      in
      (* --hedge arms the full straggler defense: hedged re-execution
         plus percentile-driven (adaptive) lease and retry deadlines *)
      let config =
        if hedge then { config with Gridsat_core.Config.hedge = true; adaptive_timeouts = true }
        else config
      in
      (* --standby arms hot-standby master replication; under --chaos the
         lease and ship interval tighten so the canned early crash
         promotes within the demo run's horizon *)
      let config =
        if standby then
          {
            config with
            Gridsat_core.Config.standby = true;
            ship_sync = ship = "sync";
            standby_lease = (if chaos then 6. else config.Gridsat_core.Config.standby_lease);
            ship_interval = (if chaos then 1. else config.Gridsat_core.Config.ship_interval);
          }
        else config
      in
      let fault_plan = if chaos then chaos_plan ~standby ~partition:chaos_partition () else [] in
      let fault_plan =
        if stragglers > 0 then straggler_plan ~n:stragglers ~flaky ~seed @ fault_plan else fault_plan
      in
      let fault_plan =
        if corrupt_p > 0. then
          Grid.Fault.Corrupt_messages
            { src_site = None; dst_site = None; p = corrupt_p; from_t = 0.; until_t = infinity }
          :: fault_plan
        else fault_plan
      in
      let fault_plan =
        if choke > 0 then
          Grid.Fault.Choke_link
            {
              src_site = None;
              dst_site = None;
              bytes_per_window = choke;
              window = config.Gridsat_core.Config.share_window;
              from_t = 0.;
              until_t = infinity;
            }
          :: fault_plan
        else fault_plan
      in
      match Gridsat_core.Config.validate config with
      | Error e ->
          Printf.eprintf "gridsat: bad configuration: %s\n" e;
          2
      | Ok () ->
      let health = if hedge || health_report then Some (Gridsat_core.Health.create ()) else None in
      let result = Gridsat_core.Gridsat.solve ?health ~config ~fault_plan ~obs ~testbed cnf in
      (match result.Gridsat_core.Master.answer with
      | Gridsat_core.Master.Sat model -> Format.printf "s SATISFIABLE@.v %a@." Sat.Model.pp model
      | Gridsat_core.Master.Unsat -> Format.printf "s UNSATISFIABLE@."
      | Gridsat_core.Master.Unknown why -> Format.printf "s UNKNOWN@.c %s@." why);
      (if certify then
         match result.Gridsat_core.Master.answer with
         | Gridsat_core.Master.Unsat ->
             Format.printf "c certified UNSAT: %d fragments checked, %d quarantines@."
               result.Gridsat_core.Master.certified_fragments result.Gridsat_core.Master.quarantines
         | Gridsat_core.Master.Sat _ -> Format.printf "c certified SAT: model re-evaluated@."
         | Gridsat_core.Master.Unknown _ -> ());
      (if corrupt_p > 0. then
         Format.printf "c corruption: %d payloads detected, %d nacked@."
           result.Gridsat_core.Master.corrupt_detected result.Gridsat_core.Master.nacks);
      (if hedge then
         Format.printf "c hedging: %d launched, %d losers fenced@."
           result.Gridsat_core.Master.hedges result.Gridsat_core.Master.hedge_cancellations);
      (if standby then
         Format.printf
           "c failover: %d promotion(s), %d journal batches shipped, %d stale frames rejected, %d \
            divergences@."
           result.Gridsat_core.Master.promotions result.Gridsat_core.Master.ships
           result.Gridsat_core.Master.stale_epoch_rejections
           result.Gridsat_core.Master.replication_divergences);
      (match health with Some hm when health_report -> print_health_table hm | _ -> ());
      (if share_budget > 0 || journal_quota > 0 || choke > 0 then
         Format.printf
           "c resources: %d clauses shed (link peak %d B), %d dups suppressed, outbox peak %d \
            (%d shed), %d forced compactions, %d degraded entries@."
           result.Gridsat_core.Master.shares_shed result.Gridsat_core.Master.share_link_peak
           result.Gridsat_core.Master.dup_suppressed result.Gridsat_core.Master.outbox_peak
           result.Gridsat_core.Master.outbox_shed result.Gridsat_core.Master.forced_compactions
           result.Gridsat_core.Master.degraded_entries);
      if stats then Format.printf "@.%a@." Gridsat_core.Gridsat.pp_result result;
      emit_telemetry ~report ~trace ~obs (fun () ->
          Gridsat_core.Run_report.build
            ~meta:
              [
                ("mode", Obs.Json.String "grid");
                ("seed", Obs.Json.Int seed);
                ("chaos", Obs.Json.Bool chaos);
                ("certify", Obs.Json.Bool certify);
                ("corrupt_p", Obs.Json.Float corrupt_p);
                ("hedge", Obs.Json.Bool hedge);
                ("standby", Obs.Json.Bool standby);
                ("stragglers", Obs.Json.Int stragglers);
                ("share_budget", Obs.Json.Int share_budget);
                ("journal_quota", Obs.Json.Int journal_quota);
                ("outbox_cap", Obs.Json.Int outbox_cap);
                ("choke", Obs.Json.Int choke);
              ]
            ~obs result);
      0

let solve_par ~jobs ~stats ~share_len cnf =
  let outcome, st = Par.Par_solver.solve ~num_domains:jobs ~share_max_len:share_len cnf in
  (match outcome with
  | Par.Par_solver.Sat model -> Format.printf "s SATISFIABLE@.v %a@." Sat.Model.pp model
  | Par.Par_solver.Unsat -> Format.printf "s UNSATISFIABLE@."
  | Par.Par_solver.Budget_exhausted -> Format.printf "s UNKNOWN@.");
  if stats then
    Format.printf "c domains=%d splits=%d shared=%d subproblems=%d propagations=%d@."
      st.Par.Par_solver.domains st.Par.Par_solver.splits st.Par.Par_solver.shared_clauses
      st.Par.Par_solver.subproblems_solved st.Par.Par_solver.propagations;
  0

let solve_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf") in
  let mode =
    Arg.(value & opt string "seq" & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"seq, grid or par")
  in
  let testbed =
    Arg.(value & opt string "uniform" & info [ "t"; "testbed" ] ~doc:"uniform, grads or set2")
  in
  let hosts = Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"hosts for the uniform testbed") in
  let jobs = Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~doc:"domains for par mode") in
  let share_len = Arg.(value & opt int 10 & info [ "share-len" ] ~doc:"max shared clause length") in
  let timeout =
    Arg.(
      value & opt float 100_000.
      & info [ "timeout" ]
          ~doc:
            "grid mode: override Config.overall_timeout (virtual seconds, must be positive).  A \
             run that hits the timeout ends UNKNOWN but still writes its --report/--trace \
             artifacts.")
  in
  let budget = Arg.(value & opt (some int) None & info [ "budget" ] ~doc:"propagation budget") in
  let proof =
    Arg.(value & opt (some string) None & info [ "proof" ] ~doc:"write a DRUP proof here (seq mode)")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"print run statistics") in
  let preprocess =
    Arg.(value & flag & info [ "preprocess" ] ~doc:"simplify before solving (seq mode)")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"run seed (grid mode)") in
  let chaos =
    Arg.(value & flag & info [ "chaos" ] ~doc:"arm a canned fault plan (grid mode)")
  in
  let chaos_partition =
    Arg.(
      value & flag
      & info [ "chaos-partition" ]
          ~doc:
            "with --chaos --standby: swap the canned master crash for a partition of the \
             standby's site.  The lease still expires and promotes the replica, but the old \
             primary survives as a dueling master — after the heal its stale-epoch frames must \
             be rejected and the zombie fenced")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "certify the answer (grid mode): clients attach DRUP fragments to UNSAT claims, the \
             master checks each one under its branch's guiding path and quarantines clients whose \
             answers fail.  Implies integrity framing and disables clause sharing.")
  in
  let corrupt_p =
    Arg.(
      value & opt float 0.
      & info [ "corrupt-p" ]
          ~doc:"probability of corrupting each message payload in flight (grid mode fault injection)")
  in
  let hedge =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "grid mode: arm the straggler defense — health-aware ranking, adaptive lease/retry \
             deadlines, and hedged re-execution (a subproblem running past the fleet p99 is cloned \
             to an idle host; first result wins, the loser is cancelled and fenced)")
  in
  let standby =
    Arg.(
      value & flag
      & info [ "standby" ]
          ~doc:
            "grid mode: arm a hot-standby master — journal records ship to a shadow replica that \
             continuously checks its replay digest against the primary's; if the primary falls \
             silent past the standby lease, the replica bumps the master epoch and takes the run \
             over without restarting the clients")
  in
  let ship =
    Arg.(
      value & opt string "async"
      & info [ "ship" ] ~docv:"MODE"
          ~doc:
            "journal shipping mode with --standby: $(b,async) batches records on the ship \
             interval (bounded replication lag), $(b,sync) ships every record as it is appended \
             (zero lag, one extra message per append)")
  in
  let stragglers =
    Arg.(
      value & opt int 0
      & info [ "stragglers" ]
          ~doc:
            "grid mode fault injection: silently slow down this many hosts early in the run \
             (seeded factors; heartbeats stay on time, so only --hedge defends)")
  in
  let flaky =
    Arg.(
      value & flag
      & info [ "flaky" ]
          ~doc:"make --stragglers oscillate between full and degraded speed instead of a one-shot slowdown")
  in
  let share_budget =
    Arg.(
      value & opt int 0
      & info [ "share-budget" ]
          ~doc:
            "grid mode: per-recipient-link clause-share byte budget per share window (0 = \
             unconditional broadcast).  Shortest clauses are relayed first; whatever exceeds a \
             link's window budget is shed and counted")
  in
  let journal_quota =
    Arg.(
      value & opt int 0
      & info [ "journal-quota" ]
          ~doc:
            "grid mode: disk quota for the master's write-ahead journal in estimated bytes (0 = \
             unlimited).  Crossing it forces an emergency compaction; if still over, the run \
             enters journaled-degraded mode until occupancy drops")
  in
  let outbox_cap =
    Arg.(
      value & opt int 32
      & info [ "outbox-cap" ]
          ~doc:
            "grid mode: high watermark of each client's master-outage outbox.  Above it the \
             biggest buffered clause-share batches are shed first; control messages are never \
             shed")
  in
  let choke =
    Arg.(
      value & opt int 0
      & info [ "choke" ]
          ~doc:
            "grid mode fault injection: saturate every link — at most this many bytes per share \
             window per link, the rest dropped (deterministic, 0 disables)")
  in
  let health_report =
    Arg.(
      value & flag
      & info [ "health-report" ]
          ~doc:"grid mode: print the per-host health table (score, breaker state, signal EWMAs) after the run")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~doc:"write the run report JSON here")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~doc:"write a Chrome trace_event file here (chrome://tracing, Perfetto)")
  in
  let run file mode testbed hosts jobs share_len timeout budget proof stats preprocess seed chaos
      chaos_partition certify corrupt_p hedge standby ship stragglers flaky share_budget
      journal_quota outbox_cap choke health_report report trace =
    match read_cnf file with
    | Error e ->
        prerr_endline e;
        2
    | Ok cnf -> (
        match mode with
        | "seq" -> solve_sequential ~preprocess ~proof_out:proof ~stats ~budget ~report ~trace cnf
        | "grid" ->
            solve_grid ~testbed ~hosts ~stats ~share_len ~timeout ~seed ~chaos ~chaos_partition
              ~certify ~corrupt_p ~hedge ~standby ~ship ~stragglers ~flaky ~share_budget
              ~journal_quota ~outbox_cap ~choke ~health_report ~report ~trace cnf
        | "par" ->
            if report <> None || trace <> None then
              Format.printf "c note: --report/--trace are not wired into par mode@.";
            solve_par ~jobs ~stats ~share_len cnf
        | other ->
            Printf.eprintf "unknown mode %S (seq|grid|par)\n" other;
            2)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a DIMACS CNF file")
    Term.(
      const run $ file $ mode $ testbed $ hosts $ jobs $ share_len $ timeout $ budget $ proof
      $ stats $ preprocess $ seed $ chaos $ chaos_partition $ certify $ corrupt_p $ hedge $ standby
      $ ship $ stragglers $ flaky $ share_budget $ journal_quota $ outbox_cap $ choke
      $ health_report $ report $ trace)

(* ---------- serve ---------- *)

module Svc = Gridsat_service.Service
module Sjob = Gridsat_service.Job

let split_commas s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let ensure_dir d =
  if not (Sys.file_exists d) then Sys.mkdir d 0o755
  else if not (Sys.is_directory d) then invalid_arg (Printf.sprintf "%s exists and is not a directory" d)

let serve ~files ~testbed ~hosts ~hosts_per_job ~max_concurrent ~queue_cap ~tenants ~priorities
    ~deadline ~seed ~chaos ~corrupt_p ~hedge ~standby ~ship ~slow_hosts ~flaky ~share_budget
    ~journal_quota ~outbox_cap ~choke ~brownout ~resubmit ~stats ~report ~slo ~flight_dir
    ~metrics_dir =
  let slo_spec =
    match slo with
    | None -> Ok None
    | Some s -> (
        match Obs.Slo.parse s with
        | Ok spec -> Ok (Some spec)
        | Error e -> Error (Printf.sprintf "bad --slo spec: %s" e))
  in
  match slo_spec with
  | Error e ->
      prerr_endline e;
      2
  | Ok _ when ship <> "async" && ship <> "sync" ->
      Printf.eprintf "bad --ship %S (async|sync)\n" ship;
      2
  | Ok slo_spec -> (
  match testbed_of_string ~hosts testbed with
  | Error e ->
      prerr_endline e;
      2
  | Ok testbed -> (
      let prios =
        List.fold_right
          (fun s acc ->
            match (acc, Sjob.priority_of_string s) with
            | Error e, _ -> Error e
            | _, Error e -> Error e
            | Ok ps, Ok p -> Ok (p :: ps))
          (split_commas priorities) (Ok [])
      in
      match prios with
      | Error e ->
          prerr_endline e;
          2
      | Ok [] ->
          prerr_endline "empty --priorities";
          2
      | Ok prios -> (
          let tenants = match split_commas tenants with [] -> [ "default" ] | ts -> ts in
          let rec read_all acc = function
            | [] -> Ok (List.rev acc)
            | f :: rest -> (
                match read_cnf f with
                | Error e -> Error e
                | Ok cnf -> read_all ((f, cnf) :: acc) rest)
          in
          match read_all [] files with
          | Error e ->
              prerr_endline e;
              2
          | Ok cnfs ->
              let observing =
                report <> None || slo_spec <> None || flight_dir <> None || metrics_dir <> None
              in
              let obs =
                if observing then
                  Obs.create ~flight:(Obs.Flight.create ()) ~anomaly:(Obs.Anomaly.create ()) ()
                else Obs.disabled
              in
              let run_config =
                {
                  Gridsat_core.Config.default with
                  Gridsat_core.Config.split_timeout = 5.;
                  share_budget;
                  journal_quota;
                  outbox_cap;
                  seed;
                }
              in
              (* --chaos targets the recovery machinery, so turn it on:
                 light checkpoints, tight heartbeat lease, eager splits *)
              let run_config =
                if chaos then
                  {
                    run_config with
                    Gridsat_core.Config.checkpoint = Gridsat_core.Config.Light;
                    checkpoint_period = 2.;
                    heartbeat_period = 2.;
                    suspect_timeout = 8.;
                    split_timeout = 1.;
                    slice = 0.5;
                  }
                else run_config
              in
              let run_config =
                if hedge then
                  { run_config with Gridsat_core.Config.hedge = true; adaptive_timeouts = true }
                else run_config
              in
              (* --standby keeps a hot replica fed with journal batches so
                 a chaos-injected master crash promotes instead of waiting
                 for a replay-restart; under --chaos, tighten the standby
                 lease and ship cadence so the takeover fits the short
                 per-job horizon (the lease must exceed heartbeat_period) *)
              let run_config =
                if standby then
                  {
                    run_config with
                    Gridsat_core.Config.standby = true;
                    ship_sync = ship = "sync";
                    standby_lease =
                      (if chaos then 6. else run_config.Gridsat_core.Config.standby_lease);
                    ship_interval =
                      (if chaos then 1. else run_config.Gridsat_core.Config.ship_interval);
                  }
                else run_config
              in
              let svc_chaos =
                if chaos || corrupt_p > 0. || slow_hosts > 0 || choke > 0 then
                  Some
                    {
                      Svc.default_chaos with
                      Svc.master_crash = chaos;
                      corrupt_p;
                      crash_hosts = (if chaos then 1 else 0);
                      slow_hosts;
                      flaky;
                      choke;
                    }
                else None
              in
              let cfg =
                {
                  Svc.default_config with
                  Svc.run = run_config;
                  hosts_per_job;
                  max_concurrent;
                  queue_capacity = queue_cap;
                  seed;
                  chaos = svc_chaos;
                  brownout_threshold = brownout;
                }
              in
              let on_flight =
                Option.map
                  (fun dir ->
                    ensure_dir dir;
                    fun ~name doc ->
                      let path = Filename.concat dir name in
                      write_doc path doc;
                      Format.printf "c flight dump written to %s@." path)
                  flight_dir
              in
              let on_expo =
                Option.map
                  (fun dir ->
                    ensure_dir dir;
                    fun text ->
                      Out_channel.with_open_text (Filename.concat dir "metrics.prom")
                        (fun oc -> Out_channel.output_string oc text))
                  metrics_dir
              in
              let svc =
                try Ok (Svc.create ~obs ?slo:slo_spec ?on_flight ?on_expo ~cfg ~testbed ())
                with Invalid_argument e -> Error e
              in
              (match svc with
              | Error e ->
                  Printf.eprintf "gridsat: bad configuration: %s\n" e;
                  2
              | Ok svc ->
                  let pick l i = List.nth l (i mod List.length l) in
                  let submit_batch tag =
                    List.iteri
                      (fun i (file, cnf) ->
                        let tenant = pick tenants i and priority = pick prios i in
                        let deadline_in = if deadline > 0. then Some deadline else None in
                        let label = Printf.sprintf "%s%s" file tag in
                        match Svc.submit svc ~tenant ~priority ?deadline_in ~label cnf with
                        | Svc.Accepted -> ()
                        | Svc.Cached a ->
                            Format.printf "c %-28s served from cache: %s@." label
                              (Sjob.answer_string a)
                        | Svc.Rejected { retry_after } ->
                            Format.printf "c %-28s shed (queue full), retry in %.0f s@." label
                              retry_after)
                      cnfs
                  in
                  submit_batch "";
                  Svc.run svc;
                  if resubmit then begin
                    Format.printf "c --- resubmitting the batch (verdict cache) ---@.";
                    submit_batch " (again)"
                  end;
                  List.iter
                    (fun (j : Sjob.t) ->
                      let wait =
                        match j.Sjob.started_at with
                        | Some st -> Printf.sprintf "wait %.1f s" (st -. j.Sjob.submitted_at)
                        | None -> "no run"
                      in
                      Format.printf "c job %-3d %-28s %-8s %-6s -> %-16s (%s)@." j.Sjob.id
                        j.Sjob.label j.Sjob.tenant
                        (Sjob.priority_string j.Sjob.priority)
                        (Sjob.state_string j.Sjob.state)
                        wait)
                    (Svc.jobs svc);
                  let s = Svc.stats svc in
                  Format.printf
                    "c service: submitted %d admitted %d shed %d cache-hits %d deadlines %d \
                     preempted %d cancelled %d completed %d@."
                    s.Svc.submitted s.Svc.admitted s.Svc.shed s.Svc.cache_hits
                    s.Svc.deadline_expired s.Svc.preempted s.Svc.cancelled s.Svc.completed;
                  if standby then begin
                    let promotions, ships, stale =
                      List.fold_left
                        (fun (p, sh, st) (j : Sjob.t) ->
                          match j.Sjob.result with
                          | None -> (p, sh, st)
                          | Some r ->
                              ( p + r.Gridsat_core.Master.promotions,
                                sh + r.Gridsat_core.Master.ships,
                                st + r.Gridsat_core.Master.stale_epoch_rejections ))
                        (0, 0, 0) (Svc.jobs svc)
                    in
                    Format.printf
                      "c failover: %d promotion(s), %d journal batches shipped, %d stale frames \
                       rejected@."
                      promotions ships stale
                  end;
                  (if share_budget > 0 || journal_quota > 0 || choke > 0 then
                     let shed, peak, dups, degr =
                       List.fold_left
                         (fun (sh, pk, du, de) (j : Sjob.t) ->
                           match j.Sjob.result with
                           | None -> (sh, pk, du, de)
                           | Some r ->
                               ( sh + r.Gridsat_core.Master.shares_shed,
                                 max pk r.Gridsat_core.Master.share_link_peak,
                                 du + r.Gridsat_core.Master.dup_suppressed,
                                 de + r.Gridsat_core.Master.degraded_entries ))
                         (0, 0, 0, 0) (Svc.jobs svc)
                     in
                     Format.printf
                       "c resources: %d clauses shed (link peak %d B), %d dups suppressed, %d \
                        degraded entries, joblog degraded %d@."
                       shed peak dups degr s.Svc.joblog_degraded_entries);
                  if stats then begin
                    Format.printf
                      "c pool: %d hosts, %d free, %d healthy; brownouts %d (%d deadlines \
                       stretched); resource pressure %b; virtual time %.1f s@."
                      s.Svc.hosts_total s.Svc.hosts_free s.Svc.hosts_healthy s.Svc.brownouts
                      s.Svc.deadlines_stretched s.Svc.resource_pressure
                      (Grid.Sim.now (Svc.sim svc));
                    print_health_table (Svc.health svc)
                  end;
                  (match Svc.slo svc with
                  | None -> ()
                  | Some tracker ->
                      print_string
                        (Obs.Slo.summary tracker ~now:(Grid.Sim.now (Svc.sim svc))));
                  (let triggers = Svc.anomalies svc in
                   if observing && triggers <> [] then
                     Format.printf "c anomalies: %d trigger(s)%s@." (List.length triggers)
                       (String.concat ""
                          (List.map
                             (fun (tr : Obs.Anomaly.trigger) ->
                               Printf.sprintf " [%s@%.1f]" tr.Obs.Anomaly.rule tr.Obs.Anomaly.at)
                             triggers)));
                  (match report with
                  | None -> ()
                  | Some path ->
                      write_doc path (Svc.report svc);
                      Format.printf "c service report written to %s@." path);
                  0))))

let serve_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.cnf") in
  let testbed =
    Arg.(value & opt string "uniform" & info [ "t"; "testbed" ] ~doc:"uniform, grads or set2")
  in
  let hosts = Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"hosts for the uniform testbed") in
  let hosts_per_job =
    Arg.(value & opt int 2 & info [ "hosts-per-job" ] ~doc:"lease size for each run")
  in
  let max_concurrent =
    Arg.(value & opt int 4 & info [ "max-concurrent" ] ~doc:"cap on simultaneously running jobs")
  in
  let queue_cap =
    Arg.(
      value & opt int 16
      & info [ "queue-cap" ]
          ~doc:"bounded admission queue size; submissions beyond it are shed with a retry hint")
  in
  let tenants =
    Arg.(
      value & opt string "default"
      & info [ "tenants" ] ~doc:"comma-separated tenant names, assigned round-robin")
  in
  let priorities =
    Arg.(
      value & opt string "normal"
      & info [ "priorities" ] ~doc:"comma-separated low|normal|high, cycled across jobs")
  in
  let deadline =
    Arg.(
      value & opt float 0.
      & info [ "deadline" ]
          ~doc:
            "per-job deadline in virtual seconds (0 = none); an expired job is cancelled \
             gracefully and its hosts return to the pool")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"service seed") in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "arm the per-job chaos template: a master crash-failover and a host crash inside every \
             run")
  in
  let corrupt_p =
    Arg.(
      value & opt float 0.
      & info [ "corrupt-p" ] ~doc:"probability of corrupting each message payload in flight")
  in
  let hedge =
    Arg.(
      value & flag
      & info [ "hedge" ]
          ~doc:
            "arm the straggler defense in every run: health-aware ranking, adaptive timeouts and \
             hedged re-execution")
  in
  let standby =
    Arg.(
      value & flag
      & info [ "standby" ]
          ~doc:
            "run every job with a hot-standby master replica: the journal is shipped to a shadow \
             state machine whose lease expiry promotes it (epoch-fenced) if the primary dies")
  in
  let ship =
    Arg.(
      value & opt string "async"
      & info [ "ship" ]
          ~doc:
            "journal shipping mode for --standby: async batches entries on a timer (bounded lag), \
             sync ships every append before proceeding (zero lag, higher overhead)")
  in
  let slow_hosts =
    Arg.(
      value & opt int 0
      & info [ "slow-hosts" ]
          ~doc:"chaos: silently slow down this many of each job's leased hosts (seeded stragglers)")
  in
  let flaky =
    Arg.(
      value & flag
      & info [ "flaky" ]
          ~doc:"make --slow-hosts oscillate between full and degraded speed on a seeded period")
  in
  let share_budget =
    Arg.(
      value & opt int 0
      & info [ "share-budget" ]
          ~doc:
            "per-recipient-link clause-share byte budget per share window inside every run (0 = \
             unconditional broadcast)")
  in
  let journal_quota =
    Arg.(
      value & opt int 0
      & info [ "journal-quota" ]
          ~doc:
            "disk quota in estimated bytes for each run's write-ahead journal and the service \
             joblog (0 = unlimited); crossing it forces compaction / degraded mode and feeds the \
             resource-pressure brownout dimension")
  in
  let outbox_cap =
    Arg.(
      value & opt int 32
      & info [ "outbox-cap" ]
          ~doc:"high watermark of each client's master-outage outbox inside every run")
  in
  let choke =
    Arg.(
      value & opt int 0
      & info [ "choke" ]
          ~doc:
            "chaos: saturate every link of each run — at most this many bytes per share window \
             per link, the rest dropped (deterministic, 0 disables)")
  in
  let brownout =
    Arg.(
      value & opt float 0.
      & info [ "brownout" ]
          ~doc:
            "brownout threshold: when the healthy fraction of the pool drops below this, shed \
             low-priority queued jobs and stretch advisory deadlines (0 disables)")
  in
  let resubmit =
    Arg.(
      value & flag
      & info [ "resubmit" ]
          ~doc:"resubmit every instance after the batch drains (demonstrates the verdict cache)")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"print pool statistics") in
  let report =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~doc:"write the aggregated service report JSON here")
  in
  let slo =
    Arg.(
      value & opt (some string) None
      & info [ "slo" ]
          ~doc:
            "per-tenant SLO spec, e.g. 'acme:queue_wait<5,solve<60\\@0.95,errors<0.1;*:solve<120'; \
             budget burn is tracked live and surfaced in the report's slo section")
  in
  let flight_dir =
    Arg.(
      value & opt (some string) None
      & info [ "flight-dir" ]
          ~doc:
            "write anomaly-triggered flight-recorder incident dumps (FLIGHT-*.json) into this \
             directory as they fire")
  in
  let metrics_dir =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-dir" ]
          ~doc:
            "write a Prometheus-style text exposition of the metrics registry to \
             DIR/metrics.prom periodically and at the end of the run")
  in
  let run files testbed hosts hosts_per_job max_concurrent queue_cap tenants priorities deadline
      seed chaos corrupt_p hedge standby ship slow_hosts flaky share_budget journal_quota
      outbox_cap choke brownout resubmit stats report slo flight_dir metrics_dir =
    serve ~files ~testbed ~hosts ~hosts_per_job ~max_concurrent ~queue_cap ~tenants ~priorities
      ~deadline ~seed ~chaos ~corrupt_p ~hedge ~standby ~ship ~slow_hosts ~flaky ~share_budget
      ~journal_quota ~outbox_cap ~choke ~brownout ~resubmit ~stats ~report ~slo ~flight_dir
      ~metrics_dir
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Solve a batch of CNF files as a multi-tenant job service")
    Term.(
      const run $ files $ testbed $ hosts $ hosts_per_job $ max_concurrent $ queue_cap $ tenants
      $ priorities $ deadline $ seed $ chaos $ corrupt_p $ hedge $ standby $ ship $ slow_hosts
      $ flaky $ share_budget $ journal_quota $ outbox_cap $ choke $ brownout $ resubmit $ stats
      $ report $ slo $ flight_dir $ metrics_dir)

(* ---------- gen ---------- *)

let write_cnf out cnf =
  match out with
  | None -> print_string (Sat.Dimacs.to_string cnf)
  | Some path ->
      Sat.Dimacs.write_file path cnf;
      Printf.printf "c wrote %s (%d vars, %d clauses)\n" path (Sat.Cnf.nvars cnf)
        (Sat.Cnf.nclauses cnf)

let gen_cmd =
  let family =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FAMILY"
          ~doc:
            "php, random, planted, parity, tseitin, mixer, factor-sat, factor-unsat, qg, hanoi, \
             coloring, mycielski, mitre")
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"size parameter") in
  let m = Arg.(value & opt (some int) None & info [ "m" ] ~doc:"secondary size parameter") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"random seed") in
  let ratio = Arg.(value & opt float 4.26 & info [ "ratio" ] ~doc:"clause/variable ratio") in
  let pigeons = Arg.(value & opt int 8 & info [ "pigeons" ] ~doc:"php: pigeons") in
  let holes = Arg.(value & opt int 7 & info [ "holes" ] ~doc:"php: holes") in
  let colors = Arg.(value & opt int 3 & info [ "colors" ] ~doc:"coloring: colours") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"output file") in
  let run family n m seed ratio pigeons holes colors out =
    let second default = Option.value ~default m in
    let cnf =
      match family with
      | "php" -> Ok (Workloads.Php.instance ~pigeons ~holes)
      | "random" -> Ok (Workloads.Random_sat.instance ~nvars:n ~ratio ~seed ())
      | "planted" -> Ok (Workloads.Random_sat.planted ~nvars:n ~ratio ~seed ())
      | "parity" ->
          Ok
            (Workloads.Parity.instance ~nbits:n
               ~nsamples:(second (n + (n / 20)))
               ~subset:4 ~corrupted:0 ~seed)
      | "tseitin" ->
          Ok (Workloads.Tseitin.instance ~nvertices:n ~degree:4 ~charge:`Odd ~seed)
      | "mixer" -> Ok (Workloads.Counter.mixer_preimage ~bits:n ~rounds:(second 9) ~seed)
      | "factor-sat" ->
          Ok
            (Workloads.Factoring.instance ~abits:n ~bbits:n
               ~product:(Workloads.Factoring.semiprime ~bits:n ~seed))
      | "factor-unsat" ->
          Ok
            (Workloads.Factoring.instance ~abits:n ~bbits:n
               ~product:(Workloads.Factoring.prime ~bits:n ~seed))
      | "qg" -> Ok (Workloads.Quasigroup.instance ~n ~idempotent:true ~symmetric:true)
      | "hanoi" ->
          Ok (Workloads.Hanoi.instance ~disks:n ~steps:(second (Workloads.Hanoi.optimal_steps n)))
      | "coloring" ->
          Ok (Workloads.Coloring.random_graph ~n ~avg_degree:9.2 ~colors ~seed)
      | "mycielski" -> Ok (Workloads.Coloring.mycielski ~levels:n ~colors)
      | "mitre" -> Ok (Workloads.Equiv.multiplier_mitre ~bits:n ~bug:false)
      | other -> Error (Printf.sprintf "unknown family %S" other)
    in
    match cnf with
    | Ok cnf ->
        write_cnf out cnf;
        0
    | Error e ->
        prerr_endline e;
        2
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark instance as DIMACS")
    Term.(const run $ family $ n $ m $ seed $ ratio $ pigeons $ holes $ colors $ out)

(* ---------- check ---------- *)

let check_cmd =
  let cnf_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf") in
  let proof_file = Arg.(required & pos 1 (some file) None & info [] ~docv:"PROOF.drup") in
  let run cnf_file proof_file =
    match read_cnf cnf_file with
    | Error e ->
        prerr_endline e;
        2
    | Ok cnf -> (
        let text = In_channel.with_open_text proof_file In_channel.input_all in
        match Sat.Drup.of_string text with
        | exception Failure e ->
            prerr_endline e;
            2
        | proof -> (
            match Sat.Drup.check cnf proof with
            | Ok () ->
                Printf.printf "VERIFIED (%d steps)\n" (List.length proof);
                0
            | Error e ->
                Printf.printf "NOT VERIFIED: %s\n" e;
                1))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a DRUP unsatisfiability proof")
    Term.(const run $ cnf_file $ proof_file)

(* ---------- report ---------- *)

(* Flatten a JSON document to its numeric leaves, addressed by dotted
   path ("metrics.service.e2e_s.p99", list items by index).  The diff
   mode compares two reports leaf-by-leaf on these paths. *)
let numeric_leaves doc =
  let acc = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec walk prefix (j : Obs.Json.t) =
    match j with
    | Obs.Json.Int i -> acc := (prefix, float_of_int i) :: !acc
    | Obs.Json.Float f -> acc := (prefix, f) :: !acc
    | Obs.Json.Obj kvs -> List.iter (fun (k, v) -> walk (join prefix k) v) kvs
    | Obs.Json.List items -> List.iteri (fun i v -> walk (join prefix (string_of_int i)) v) items
    | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.String _ -> ()
  in
  walk "" doc;
  List.rev !acc

let last_segment path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let diff_reports ~fail_above ~gate doc_a doc_b =
  let leaves_a = numeric_leaves doc_a and leaves_b = numeric_leaves doc_b in
  let tbl_b = Hashtbl.create 256 in
  List.iter (fun (p, v) -> Hashtbl.replace tbl_b p v) leaves_b;
  let regressions = ref [] in
  let changed = ref 0 in
  List.iter
    (fun (path, a) ->
      match Hashtbl.find_opt tbl_b path with
      | None -> ()
      | Some b when a = b -> ()
      | Some b ->
          incr changed;
          let pct = if a = 0. then infinity else (b -. a) /. Float.abs a *. 100. in
          let pct_s = if a = 0. then "+inf%" else Printf.sprintf "%+.1f%%" pct in
          Printf.printf "%-56s %14s -> %-14s %s\n" path (Obs.Json.float_repr a)
            (Obs.Json.float_repr b) pct_s;
          if last_segment path = gate && b > a && (a = 0. || pct > fail_above) then
            regressions := (path, a, b, pct) :: !regressions)
    leaves_a;
  let only_in side leaves tbl =
    let missing = List.filter (fun (p, _) -> not (Hashtbl.mem tbl p)) leaves in
    if missing <> [] then
      Printf.printf "(%d metric path(s) only in %s)\n" (List.length missing) side
  in
  let tbl_a = Hashtbl.create 256 in
  List.iter (fun (p, v) -> Hashtbl.replace tbl_a p v) leaves_a;
  only_in "A" leaves_a tbl_b;
  only_in "B" leaves_b tbl_a;
  if !changed = 0 then print_endline "no numeric differences";
  match List.rev !regressions with
  | [] -> 0
  | regs ->
      Printf.printf "FAIL: %d %s leaf(s) regressed beyond %.1f%%:\n" (List.length regs) gate
        fail_above;
      List.iter
        (fun (path, a, b, pct) ->
          Printf.printf "  %s: %s -> %s (%s)\n" path (Obs.Json.float_repr a)
            (Obs.Json.float_repr b)
            (if pct = infinity then "+inf%" else Printf.sprintf "%+.1f%%" pct))
        regs;
      1

let report_cmd =
  let file_a = Arg.(required & pos 0 (some file) None & info [] ~docv:"REPORT.json") in
  let file_b =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"OTHER.json"
          ~doc:"when given, diff the two reports metric-by-metric instead of summarising")
  in
  let fail_above =
    Arg.(
      value & opt float 20.
      & info [ "fail-above" ]
          ~doc:
            "diff mode: exit non-zero when a gated metric leaf grows by more than this percentage")
  in
  let gate =
    Arg.(
      value & opt string "p99"
      & info [ "gate" ]
          ~doc:"diff mode: leaf name whose growth is gated by --fail-above (default p99)")
  in
  let load file =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Obs.Json.of_string text with
    | Error e -> Error (Printf.sprintf "%s: not valid JSON: %s" file e)
    | Ok doc -> Ok doc
  in
  let run file_a file_b fail_above gate =
    match file_b with
    | None -> (
        match load file_a with
        | Error e ->
            prerr_endline e;
            1
        | Ok doc -> (
            match Obs.Report.validate doc with
            | Error e ->
                Printf.eprintf "%s: not a gridsat report: %s\n" file_a e;
                1
            | Ok () ->
                print_string (Obs.Report.summary doc);
                0))
    | Some file_b -> (
        match (load file_a, load file_b) with
        | Error e, _ | _, Error e ->
            prerr_endline e;
            1
        | Ok doc_a, Ok doc_b -> diff_reports ~fail_above ~gate doc_a doc_b)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Validate and summarise a gridsat run report, or diff two reports with a p99 gate")
    Term.(const run $ file_a $ file_b $ fail_above $ gate)

(* ---------- registry ---------- *)

let registry_cmd =
  let run () =
    Printf.printf "%-32s %-20s %-6s %s\n" "paper instance" "analog family" "status" "category";
    Printf.printf "%s\n" (String.make 78 '-');
    List.iter
      (fun (e : Workloads.Registry.entry) ->
        Printf.printf "%-32s %-20s %-6s %s\n" e.Workloads.Registry.name e.Workloads.Registry.family
          (match e.Workloads.Registry.status with
          | Workloads.Registry.Sat -> "SAT"
          | Workloads.Registry.Unsat -> "UNSAT"
          | Workloads.Registry.Open -> "*")
          (match e.Workloads.Registry.category with
          | Workloads.Registry.Both_solved -> "both"
          | Workloads.Registry.Gridsat_only -> "gridsat-only"
          | Workloads.Registry.Neither_solved -> "neither"))
      Workloads.Registry.table1;
    0
  in
  Cmd.v (Cmd.info "registry" ~doc:"List the SAT2002 analog registry") Term.(const run $ const ())

let () =
  let info = Cmd.info "gridsat" ~version:"1.0" ~doc:"GridSAT: a Chaff-based distributed SAT solver" in
  exit
    (Cmd.eval'
       (Cmd.group info [ solve_cmd; serve_cmd; gen_cmd; check_cmd; report_cmd; registry_cmd ]))
