(* Calibration sweep for the registry: runs the zChaff-model baseline on
   every Table 1 analog at the benchmark scale and reports where each row
   lands, so the generator parameters can be tuned to reproduce the
   paper's bands.  Not part of the reproduction itself. *)

let scale = 40.

let zchaff_timeout = 18_000. /. scale

let speed = 3000.

let mem_limit = 16 * 1024 * 1024 * 6 / 10 (* fastest grads host at 1/64 memory, 60% usable *)

let run_row (e : Workloads.Registry.entry) =
  let t0 = Unix.gettimeofday () in
  let cnf = e.Workloads.Registry.gen () in
  let gen_time = Unix.gettimeofday () -. t0 in
  let config =
    {
      Sat.Solver.default_config with
      Sat.Solver.reduce_db_enabled = false;
      mem_limit_bytes = mem_limit;
    }
  in
  let solver = Sat.Solver.create ~config cnf in
  let budget_total = int_of_float (zchaff_timeout *. speed) in
  let chunk = 30_000 in
  let peak_db = ref 0 in
  let rec loop () =
    if !peak_db < Sat.Solver.db_bytes solver then peak_db := Sat.Solver.db_bytes solver;
    if (Sat.Solver.stats solver).Sat.Stats.propagations >= budget_total then "TIMEOUT"
    else
      match Sat.Solver.run solver ~budget:chunk with
      | Sat.Solver.Sat _ -> "SAT"
      | Sat.Solver.Unsat -> "UNSAT"
      | Sat.Solver.Mem_pressure -> "MEMOUT"
      | Sat.Solver.Budget_exhausted -> loop ()
  in
  let t1 = Unix.gettimeofday () in
  let outcome = loop () in
  let real = Unix.gettimeofday () -. t1 in
  let st = Sat.Solver.stats solver in
  let vtime = float_of_int st.Sat.Stats.propagations /. speed in
  Printf.printf "%-32s %-18s exp=%-5s cat=%-8s got=%-7s vtime=%7.0f props=%9d db=%8d real=%5.1fs gen=%4.1fs\n%!"
    e.Workloads.Registry.name e.Workloads.Registry.family
    (match e.Workloads.Registry.status with
    | Workloads.Registry.Sat -> "SAT"
    | Workloads.Registry.Unsat -> "UNSAT"
    | Workloads.Registry.Open -> "?")
    (match e.Workloads.Registry.category with
    | Workloads.Registry.Both_solved -> "both"
    | Workloads.Registry.Gridsat_only -> "gs-only"
    | Workloads.Registry.Neither_solved -> "neither")
    outcome vtime st.Sat.Stats.propagations !peak_db real gen_time

let () =
  let only = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  List.iter
    (fun e ->
      match only with
      | Some prefix
        when not (String.length e.Workloads.Registry.name >= String.length prefix
                  && String.sub e.Workloads.Registry.name 0 (String.length prefix) = prefix) ->
          ()
      | _ -> run_row e)
    Workloads.Registry.table1
