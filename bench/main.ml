(* Benchmark harness entry point.

   dune exec bench/main.exe              -- everything (tables + claims + micro)
   dune exec bench/main.exe -- table1    -- Table 1 reproduction
   dune exec bench/main.exe -- table2    -- Table 2 reproduction
   dune exec bench/main.exe -- quick     -- fast subset of Table 1
   dune exec bench/main.exe -- bcp|sharing|pingpong|scheduler|bluehorizon|micro *)

let usage () =
  print_endline
    "usage: main.exe \
     [all|quick|table1|table2|bcp|sharing|pingpong|scheduler|bluehorizon|profile|ablation|faults|chaos \
     [seed]|mastercrash|service|straggler|failover|resource|parmodes|micro|obs]"

let section name f =
  Printf.printf "\n%s\n%s\n\n" (String.make 72 '=') name;
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "\n(%s finished in %.0fs)\n" name (Unix.gettimeofday () -. t0)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args = List.filter (fun a -> a <> "--") args in
  let run_all () =
    section "Table 1" (fun () -> ignore (Bench_lib.Table1.run ()));
    section "Table 2" (fun () -> ignore (Bench_lib.Table2.run ()));
    section "Claim C1 (BCP dominance)" Bench_lib.Claims.bcp;
    section "Claim C2 (share length)" Bench_lib.Claims.sharing;
    section "Claim C3 (ping-pong)" Bench_lib.Claims.pingpong;
    section "Claim C4 (scheduler)" Bench_lib.Claims.scheduler;
    section "Claim C5 (Blue Horizon)" Bench_lib.Claims.bluehorizon;
    section "Claim C6 (parallelism profile)" Bench_lib.Claims.profile;
    section "Claim C7 (solver ablation)" Bench_lib.Claims.solver_ablation;
    section "Claim C8 (fault tolerance)" Bench_lib.Claims.fault_tolerance;
    section "Claim C9 (splitting vs portfolio)" Bench_lib.Claims.par_modes;
    section "Claim C10 (chaos)" (Bench_lib.Claims.chaos ?seed:None);
    section "Claim C11 (master crash)" Bench_lib.Claims.master_crash;
    section "Claim C12 (job service)" Bench_lib.Claims.service_overload;
    section "Claim C13 (straggler hedging)" Bench_lib.Claims.straggler;
    section "Claim C14 (standby failover)" Bench_lib.Claims.failover;
    section "Claim C15 (resource exhaustion)" Bench_lib.Claims.resource;
    section "Micro-benchmarks" Bench_lib.Micro.run;
    section "Telemetry overhead" Bench_lib.Micro.obs_overhead
  in
  match args with
  | [] | [ "all" ] -> run_all ()
  | [ "quick" ] -> ignore (Bench_lib.Table1.run ~quick:true ())
  | [ "table1" ] -> ignore (Bench_lib.Table1.run ())
  | [ "table2" ] -> ignore (Bench_lib.Table2.run ())
  | [ "bcp" ] -> Bench_lib.Claims.bcp ()
  | [ "sharing" ] -> Bench_lib.Claims.sharing ()
  | [ "pingpong" ] -> Bench_lib.Claims.pingpong ()
  | [ "scheduler" ] -> Bench_lib.Claims.scheduler ()
  | [ "bluehorizon" ] -> Bench_lib.Claims.bluehorizon ()
  | [ "profile" ] -> Bench_lib.Claims.profile ()
  | [ "ablation" ] -> Bench_lib.Claims.solver_ablation ()
  | [ "faults" ] -> Bench_lib.Claims.fault_tolerance ()
  | [ "chaos" ] -> Bench_lib.Claims.chaos ()
  | [ "chaos"; s ] -> (
      match int_of_string_opt s with
      | Some seed -> Bench_lib.Claims.chaos ~seed ()
      | None -> usage ())
  | [ "mastercrash" ] -> Bench_lib.Claims.master_crash ()
  | [ "service" ] -> Bench_lib.Claims.service_overload ()
  | [ "straggler" ] -> Bench_lib.Claims.straggler ()
  | [ "failover" ] -> Bench_lib.Claims.failover ()
  | [ "resource" ] -> Bench_lib.Claims.resource ()
  | [ "parmodes" ] -> Bench_lib.Claims.par_modes ()
  | [ "micro" ] -> Bench_lib.Micro.run ()
  | [ "obs" ] -> Bench_lib.Micro.obs_overhead ()
  | _ -> usage ()
