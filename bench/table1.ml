(* Reproduction of Table 1: all 42 SAT2002-analog instances, zChaff-model
   baseline on the fastest dedicated GrADS host vs GridSAT on the shared
   34-host testbed (share length 10, 100 s split heuristic). *)

module R = Workloads.Registry

let run ?(quick = false) () =
  Printf.printf "== Table 1: GridSAT vs zChaff on the GrADS testbed ==\n";
  Printf.printf "(virtual seconds, 1 paper second = %.0f virtual ms; paper columns right)\n\n"
    (1000. /. Scale.time_scale);
  let entries =
    if quick then
      List.filter
        (fun (e : R.entry) ->
          match e.R.paper_zchaff with
          | R.Seconds s -> s < 3_000.
          | R.Timeout | R.Memout | R.Hours_bh -> false)
        R.table1
    else R.table1
  in
  let testbed = Scale.grads () in
  let rows = ref [] in
  List.iter
    (fun category ->
      let in_cat = List.filter (fun e -> e.R.category = category) entries in
      if in_cat <> [] then begin
        Printf.printf "\n-- %s --\n" (Runner.category_header category);
        Runner.print_table1_header ();
        List.iter
          (fun e ->
            let row = Runner.run_row ~testbed e in
            rows := row :: !rows;
            Runner.print_row row)
          in_cat
      end)
    [ R.Both_solved; R.Gridsat_only; R.Neither_solved ];
  Runner.print_category_summary (List.rev !rows);
  List.rev !rows
