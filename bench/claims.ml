(* Benchmarks for the paper's quantitative claims outside the two tables:
   C1 the BCP-dominance claim (Section 2.4), C2 the share-length trade-off
   (Section 3.2), C3 the ping-pong effect (Section 3.1), C4 NWS-ranked
   scheduling (Section 3.3), and C5 the Blue Horizon processor-hours
   narrative (Section 4.1). *)

module C = Gridsat_core
module W = Workloads

let medium_unsat () = W.Random_sat.instance ~nvars:200 ~ratio:5.0 ~seed:1 ()

let grid_time (r : C.Master.result) =
  match r.C.Master.answer with
  | C.Master.Sat _ | C.Master.Unsat -> Printf.sprintf "%8.1f" r.C.Master.time
  | C.Master.Unknown _ -> " TIMEOUT"

(* C1: fraction of solver run time spent in BCP ("more than 90%" in the
   paper, measured on 2003 hardware; the shape — BCP strongly dominant —
   is what we reproduce). *)
let bcp () =
  Printf.printf "== C1: BCP share of sequential run time (paper: >90%%) ==\n\n";
  Printf.printf "%-28s %10s %12s %9s\n" "instance" "conflicts" "propagations" "bcp-share";
  let cases =
    [
      ("pigeonhole 10/9", W.Php.instance ~pigeons:10 ~holes:9);
      ("random-unsat n=200", medium_unsat ());
      ("tseitin n=20", W.Tseitin.instance ~nvertices:20 ~degree:4 ~charge:`Odd ~seed:1);
      ("factoring 12x12", W.Factoring.instance ~abits:12 ~bbits:12
                            ~product:(W.Factoring.prime ~bits:12 ~seed:3));
      ("mixer 40x10", W.Counter.mixer_preimage ~bits:40 ~rounds:10 ~seed:5);
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (name, cnf) ->
      let s = Sat.Solver.create cnf in
      ignore (Sat.Solver.solve ~budget:6_000_000 s);
      let st = Sat.Solver.stats s in
      rows := (name, Sat.Stats.json st) :: !rows;
      Printf.printf "%-28s %10d %12d %8.1f%%\n%!" name st.Sat.Stats.conflicts
        st.Sat.Stats.propagations
        (100. *. Sat.Stats.bcp_fraction st))
    cases;
  Snapshot.write "bcp" (Obs.Json.Obj (List.rev !rows))

(* C2: sharing length ablation (the paper used 10 and 3 and argues short
   clauses trade pruning power against communication volume). *)
let sharing () =
  Printf.printf "== C2: clause-share length ablation (paper used 10 and 3) ==\n\n";
  Printf.printf "%-10s %9s %8s %10s %12s\n" "max len" "time" "splits" "clauses" "bytes";
  let testbed = Scale.grads () in
  let cnf = medium_unsat () in
  List.iter
    (fun len ->
      let config =
        { (Scale.t1_config ~timeout:Scale.gridsat_timeout_challenge) with
          C.Config.share_max_len = len }
      in
      let r = C.Gridsat.solve ~config ~testbed cnf in
      Printf.printf "%-10d %s %8d %10d %12d\n%!" len (grid_time r) r.C.Master.splits
        r.C.Master.shared_clauses r.C.Master.bytes)
    [ 0; 3; 10; 20 ]

(* C3: the ping-pong effect — splitting too eagerly makes the system spend
   its time moving subproblems instead of solving them. *)
let pingpong () =
  Printf.printf "== C3: split-timeout sweep (the ping-pong effect) ==\n\n";
  Printf.printf "%-14s %9s %8s %8s %12s\n" "split timeout" "time" "splits" "maxcl" "bytes";
  let testbed = Scale.grads () in
  let cnf = medium_unsat () in
  List.iter
    (fun split_timeout ->
      let config =
        { (Scale.t1_config ~timeout:Scale.gridsat_timeout_challenge) with
          C.Config.split_timeout }
      in
      let r = C.Gridsat.solve ~config ~testbed cnf in
      Printf.printf "%-14.2f %s %8d %8d %12d\n%!" split_timeout (grid_time r) r.C.Master.splits
        r.C.Master.max_clients r.C.Master.bytes)
    [ 0.05; 0.25; 1.0; 2.5; 10.0; 60.0 ]

(* C4: scheduler ablation on the heterogeneous testbed. *)
let scheduler () =
  Printf.printf "== C4: resource-selection policy ablation ==\n\n";
  Printf.printf "%-12s %9s %8s %8s\n" "policy" "time" "splits" "maxcl";
  let testbed = Scale.grads () in
  let cnf = medium_unsat () in
  List.iter
    (fun (name, policy) ->
      let config =
        { (Scale.t1_config ~timeout:Scale.gridsat_timeout_challenge) with
          C.Config.scheduler = policy }
      in
      let r = C.Gridsat.solve ~config ~testbed cnf in
      Printf.printf "%-12s %s %8d %8d\n%!" name (grid_time r) r.C.Master.splits
        r.C.Master.max_clients)
    [ ("nws-rank", C.Config.Nws_rank); ("random", C.Config.Random_pick);
      ("first-fit", C.Config.First_fit) ]

(* C5: the Blue Horizon narrative — compare solving the par32 analog with
   interactive hosts covering the queue wait vs batch-only. *)
let bluehorizon () =
  Printf.printf "== C5: batch-queue coverage (the par32-1-c story) ==\n\n";
  let e =
    match W.Registry.find "par32-1-c.cnf" with Some e -> e | None -> assert false
  in
  let cnf = e.W.Registry.gen () in
  let timeout = Scale.set2_overall_timeout in
  let run name testbed =
    let config = Scale.t2_config ~timeout in
    let r = C.Gridsat.solve ~config ~testbed cnf in
    Printf.printf "%-26s answer=%-18s time=%s maxcl=%d\n%!" name
      (C.Gridsat.answer_string r.C.Master.answer)
      (grid_time r) r.C.Master.max_clients;
    r
  in
  let both = run "interactive + batch" (Scale.set2 ()) in
  let batch_only =
    let tb = Scale.set2 () in
    run "batch only" { tb with C.Testbed.hosts = [ C.Testbed.fastest tb ] }
  in
  (match (both.C.Master.answer, batch_only.C.Master.answer) with
  | (C.Master.Sat _ | C.Master.Unsat), (C.Master.Sat _ | C.Master.Unsat) ->
      let saved_nodeseconds =
        Float.max 0. (batch_only.C.Master.time -. both.C.Master.time) *. 16.
      in
      Printf.printf
        "\ninteractive grid shortened time-to-solution by %.0f vs and saved ~%.0f\n"
        (batch_only.C.Master.time -. both.C.Master.time)
        saved_nodeseconds;
      Printf.printf "batch node-seconds (paper: 3200 processor-hours saved, 4 h faster)\n"
  | _ ->
      Printf.printf "\n(one of the runs timed out; see rows above)\n")

(* C6: the parallelism profile — "the number of active clients starts at
   one and varies during the run" (Section 4.1). *)
let profile () =
  Printf.printf "== C6: active clients over time ==\n\n";
  let cnf = W.Php.instance ~pigeons:9 ~holes:8 in
  let config = Scale.t1_config ~timeout:Scale.gridsat_timeout_challenge in
  let r = C.Gridsat.solve ~config ~testbed:(Scale.grads ()) cnf in
  let curve = C.Timeline.busy_curve r.C.Master.events in
  print_string (C.Timeline.ascii_chart curve);
  Printf.printf "\npeak %d clients, average %.1f, %.0f client-seconds consumed (answer: %s)\n"
    (C.Timeline.peak curve) (C.Timeline.average curve) (C.Timeline.client_seconds curve)
    (C.Gridsat.answer_string r.C.Master.answer)

(* C7: sequential-solver feature ablation (extensions beyond zChaff-2001:
   clause minimization and phase saving). *)
let solver_ablation () =
  Printf.printf "== C7: solver feature ablation (extensions) ==\n\n";
  Printf.printf "%-26s %12s %10s %10s %8s\n" "configuration" "propagations" "conflicts"
    "avg-len" "answer";
  let cases =
    [
      ("zChaff-2001 (base)", Sat.Solver.default_config);
      ("+ minimization", { Sat.Solver.default_config with Sat.Solver.minimize_learned = true });
      ("+ phase saving", { Sat.Solver.default_config with Sat.Solver.phase_saving = true });
      ( "+ both",
        { Sat.Solver.default_config with Sat.Solver.minimize_learned = true; phase_saving = true }
      );
    ]
  in
  List.iter
    (fun (instance_name, cnf) ->
      Printf.printf "--- %s ---\n" instance_name;
      List.iter
        (fun (name, config) ->
          let s = Sat.Solver.create ~config cnf in
          let answer =
            match Sat.Solver.solve ~budget:6_000_000 s with
            | Sat.Solver.Sat _ -> "SAT"
            | Sat.Solver.Unsat -> "UNSAT"
            | _ -> "-"
          in
          let st = Sat.Solver.stats s in
          Printf.printf "%-26s %12d %10d %10.1f %8s\n%!" name st.Sat.Stats.propagations
            st.Sat.Stats.conflicts
            (Sat.Stats.avg_learned_length st)
            answer)
        cases)
    [
      ("pigeonhole 10/9", W.Php.instance ~pigeons:10 ~holes:9);
      ("random-unsat n=200", medium_unsat ());
      ("factoring 13x13", W.Factoring.instance ~abits:13 ~bbits:13
                            ~product:(W.Factoring.prime ~bits:13 ~seed:3));
    ]

(* C8: checkpointing and fault tolerance — the paper's Section 3.4 sketches
   light/heavy checkpoints and defers their analysis to future work; this
   bench provides that analysis.  Clients are killed at a fixed cadence;
   light checkpoints persist only root assignments, heavy ones the whole
   clause set. *)
let fault_tolerance () =
  Printf.printf "== C8: checkpointing under client failures (paper: future work) ==\n\n";
  Printf.printf "%-22s %-10s %9s %8s %10s %12s\n" "scenario" "answer" "time" "kills"
    "recoveries" "ckpt-bytes";
  let cnf = W.Php.instance ~pigeons:9 ~holes:8 in
  let testbed = C.Testbed.uniform ~n:12 ~speed:1500. () in
  let run name ~checkpoint ~kill_period =
    let config =
      {
        C.Config.default with
        C.Config.split_timeout = 5.;
        slice = 1.0;
        overall_timeout = 100_000.;
        checkpoint;
      }
    in
    let kills = ref 0 in
    let on_master m =
      match kill_period with
      | None -> ()
      | Some period ->
          let rec tick () =
            C.Master.schedule m ~delay:period (fun () ->
                if not (C.Master.finished m) then begin
                  (match C.Master.busy_client_ids m with
                  | [] -> ()
                  | id :: _ ->
                      incr kills;
                      C.Master.kill_client m id);
                  tick ()
                end)
          in
          tick ()
    in
    let r = C.Gridsat.solve ~config ~on_master ~testbed cnf in
    let recoveries =
      List.length
        (List.filter
           (fun ev ->
             match ev.C.Events.kind with
             | C.Events.Recovered_from_checkpoint _ -> true
             | _ -> false)
           r.C.Master.events)
    in
    Printf.printf "%-22s %-10s %9s %8d %10d %12d\n%!" name
      (C.Gridsat.answer_string r.C.Master.answer)
      (grid_time r) !kills recoveries r.C.Master.checkpoint_bytes
  in
  run "no failures" ~checkpoint:C.Config.No_checkpoint ~kill_period:None;
  run "no ckpt + failures" ~checkpoint:C.Config.No_checkpoint ~kill_period:(Some 25.);
  run "light ckpt + failures" ~checkpoint:C.Config.Light ~kill_period:(Some 25.);
  run "heavy ckpt + failures" ~checkpoint:C.Config.Heavy ~kill_period:(Some 25.);
  Printf.printf
    "\n(without checkpoints a dead client's subproblem is re-derived from the master's\n\
     journaled lineage — more recomputation, zero stored bytes; checkpoints trade\n\
     stored bytes for resuming closer to where the dead client stopped)\n"

(* C9: splitting vs portfolio on the domains backend — the paper partitions
   the search space; modern parallel solvers often race diversified copies
   instead.  Both run here with the same clause-sharing pool. *)
let par_modes () =
  Printf.printf "== C9: search-space splitting vs portfolio (domains backend) ==\n\n";
  Printf.printf "%-26s %-12s %-10s %12s %8s %8s\n" "instance" "mode" "answer"
    "propagations" "splits" "shared";
  let cases =
    [
      ("pigeonhole 9/8 (UNSAT)", W.Php.instance ~pigeons:9 ~holes:8);
      ("mixer 38x9 (SAT)", W.Counter.mixer_preimage ~bits:38 ~rounds:9 ~seed:5);
      ("random n=200 (UNSAT)", medium_unsat ());
    ]
  in
  List.iter
    (fun (name, cnf) ->
      List.iter
        (fun (mode, f) ->
          let outcome, (st : Par.Par_solver.stats) = f cnf in
          Printf.printf "%-26s %-12s %-10s %12d %8d %8d\n%!" name mode
            (match outcome with
            | Par.Par_solver.Sat _ -> "SAT"
            | Par.Par_solver.Unsat -> "UNSAT"
            | Par.Par_solver.Budget_exhausted -> "BUDGET")
            st.Par.Par_solver.propagations st.Par.Par_solver.splits
            st.Par.Par_solver.shared_clauses)
        [
          ( "splitting",
            fun c -> Par.Par_solver.solve ~num_domains:4 ~total_budget:30_000_000 c );
          ( "portfolio",
            fun c -> Par.Par_solver.portfolio ~num_domains:4 ~total_budget:30_000_000 c );
        ])
    cases

(* C10: fault-injection chaos sweep — the robustness layer this
   reproduction adds on top of the paper: heartbeat failure detection,
   ack/retry delivery and checkpoint-driven recovery must keep the
   verdict identical to the fault-free run under scripted crashes,
   hangs, partitions and message loss. *)
let chaos ?(seed = 0) () =
  Printf.printf "== C10: verdict stability under injected faults (seed %d) ==\n\n" seed;
  Printf.printf "%-18s %-10s %9s %8s %8s %10s %8s\n" "plan" "answer" "time" "dropped"
    "retries" "recoveries" "same?";
  let module F = Grid.Fault in
  let cnf = W.Php.instance ~pigeons:7 ~holes:6 in
  let testbed () =
    let base = C.Testbed.uniform ~n:6 ~speed:1000. () in
    let hosts =
      List.mapi
        (fun i (h : C.Testbed.host) ->
          let r = h.C.Testbed.resource in
          let site = if i < 3 then "east" else "west" in
          {
            h with
            C.Testbed.resource =
              Grid.Resource.make ~id:r.Grid.Resource.id ~name:r.Grid.Resource.name ~site
                ~speed:r.Grid.Resource.speed ~mem_bytes:r.Grid.Resource.mem_bytes
                ~kind:r.Grid.Resource.kind;
          })
        base.C.Testbed.hosts
    in
    { base with C.Testbed.name = "chaos-bench"; master_site = "east"; hosts }
  in
  let config =
    {
      C.Config.default with
      C.Config.split_timeout = 2.;
      slice = 0.5;
      overall_timeout = 100_000.;
      checkpoint = C.Config.Light;
      checkpoint_period = 5.;
      heartbeat_period = 5.;
      suspect_timeout = 30.;
      seed;
    }
  in
  let baseline = C.Gridsat.solve ~config ~testbed:(testbed ()) cnf in
  let t = baseline.C.Master.time in
  let plans =
    [
      ("none", []);
      ("crash@30%", [ F.Crash_host { host = 1; at = 0.3 *. t } ]);
      ("hang@30%", [ F.Hang_host { host = 1; at = 0.3 *. t } ]);
      ( "partition 10-80%",
        [ F.Partition_site { site = "west"; from_t = 0.1 *. t; until_t = 0.8 *. t } ] );
      ( "loss p=0.2",
        [
          F.Drop_messages
            { src_site = None; dst_site = None; p = 0.2; from_t = 0.; until_t = infinity };
        ] );
    ]
  in
  let snaps = ref [] in
  List.iter
    (fun (name, fault_plan) ->
      let obs = Snapshot.obs () in
      let r = C.Gridsat.solve ~config ~fault_plan ~obs ~testbed:(testbed ()) cnf in
      if Snapshot.enabled () then
        snaps :=
          ( name,
            C.Run_report.build
              ~meta:[ ("plan", Obs.Json.String name); ("seed", Obs.Json.Int seed) ]
              ~obs r )
          :: !snaps;
      Printf.printf "%-18s %-10s %s %8d %8d %10d %8s\n%!" name
        (C.Gridsat.answer_string r.C.Master.answer)
        (grid_time r) r.C.Master.dropped_messages r.C.Master.retries r.C.Master.recoveries
        (if
           C.Gridsat.answer_string r.C.Master.answer
           = C.Gridsat.answer_string baseline.C.Master.answer
         then "yes"
         else "NO")
    )
    plans;
  Snapshot.write (Printf.sprintf "chaos_seed%d" seed) (Obs.Json.Obj (List.rev !snaps));
  Printf.printf
    "\n(crashes are detected by the heartbeat lease and recovered from checkpoints;\n\
     partitions and loss are absorbed by the ack/retry channel)\n"

(* C11: master durability — kill the master mid-run and restart it from its
   write-ahead journal.  The verdict must match the fault-free run, the
   surviving clients must be re-adopted through the resync protocol, and
   the overhead must stay bounded (clients keep solving autonomously
   during the outage, so the wall-clock cost is roughly the outage length
   plus the resync grace, not a restart from scratch). *)
let master_crash () =
  Printf.printf "== C11: master crash + journal-replay failover ==\n\n";
  let module F = Grid.Fault in
  let cnf = W.Php.instance ~pigeons:8 ~holes:7 in
  let testbed () = C.Testbed.uniform ~n:8 ~speed:1000. () in
  let config =
    {
      C.Config.default with
      C.Config.split_timeout = 2.;
      slice = 0.5;
      overall_timeout = 100_000.;
      checkpoint = C.Config.Light;
      checkpoint_period = 5.;
      heartbeat_period = 5.;
      suspect_timeout = 30.;
      retry_base = 0.5;
      retry_max_attempts = 4;
      resync_grace = 5.;
    }
  in
  Printf.printf "%-24s %-10s %9s %8s %8s %8s %10s\n" "scenario" "answer" "time" "crashes"
    "resyncs" "rederiv" "journal";
  let count_events p (r : C.Master.result) =
    List.length (List.filter (fun e -> p e.C.Events.kind) r.C.Master.events)
  in
  let run ?(obs = Obs.disabled) name ~fault_plan =
    let captured = ref None in
    let r =
      C.Gridsat.solve ~config ~fault_plan ~obs ~testbed:(testbed ())
        ~on_master:(fun m -> captured := Some m)
        cnf
    in
    let journal_cell =
      match !captured with
      | Some m ->
          let j = C.Master.journal m in
          Printf.sprintf "%d/%d" (C.Journal.appended j) (C.Journal.compactions j)
      | None -> "-"
    in
    Printf.printf "%-24s %-10s %s %8d %8d %8d %10s\n%!" name
      (C.Gridsat.answer_string r.C.Master.answer)
      (grid_time r) r.C.Master.master_crashes
      (count_events (function C.Events.Client_resynced _ -> true | _ -> false) r)
      r.C.Master.rederivations journal_cell;
    r
  in
  let baseline = run "fault-free" ~fault_plan:[] in
  let t = baseline.C.Master.time in
  let obs = Snapshot.obs () in
  let crashed =
    run ~obs "crash @30%, +15% down"
      ~fault_plan:
        [
          F.Crash_master
            { at = Float.max 4. (0.3 *. t); restart_after = Float.max 10. (0.15 *. t) };
        ]
  in
  if Snapshot.enabled () then
    Snapshot.write "mastercrash"
      (C.Run_report.build ~meta:[ ("scenario", Obs.Json.String "crash@30%+15%down") ] ~obs crashed);
  let same =
    C.Gridsat.answer_string baseline.C.Master.answer
    = C.Gridsat.answer_string crashed.C.Master.answer
  in
  Printf.printf "\nverdict preserved across the failover: %s" (if same then "yes" else "NO");
  (match (baseline.C.Master.answer, crashed.C.Master.answer) with
  | (C.Master.Sat _ | C.Master.Unsat), (C.Master.Sat _ | C.Master.Unsat) ->
      Printf.printf "; overhead %.0f%% of fault-free time\n"
        (100. *. (crashed.C.Master.time -. t) /. t)
  | _ -> print_newline ());
  Printf.printf
    "(journal column is appends/compactions; clients solve on through the outage and\n\
     the replacement master adopts their work via resync instead of restarting them)\n"

(* C12: the multi-tenant job service under overload.  A fixed 8-host
   pool (4 concurrent 2-host runs) is offered increasing batches of
   jobs, all at t=0.  The claim is graceful degradation: completions
   track pool capacity, the excess is shed at admission with a
   retry-after hint instead of queueing without bound, admitted jobs
   keep bounded waits, and no outcome is lost — every job lands in
   exactly one terminal state.  A resubmission pass then shows the
   verdict cache serving the whole solved batch with zero runs. *)
let service_overload () =
  let module S = Gridsat_service.Service in
  let module J = Gridsat_service.Job in
  Printf.printf "== C12: multi-tenant service under overload (8 hosts, 4 run slots) ==\n\n";
  Printf.printf "%-8s %9s %6s %10s %10s %10s %10s\n" "offered" "admitted" "shed" "completed"
    "mean-wait" "makespan" "terminal";
  let instance i =
    if i mod 4 = 0 then W.Php.instance ~pigeons:6 ~holes:5
    else W.Random_sat.planted ~nvars:22 ~ratio:5.0 ~seed:(100 + i) ()
  in
  let cfg =
    {
      S.default_config with
      S.hosts_per_job = 2;
      max_concurrent = 4;
      queue_capacity = 8;
      retry_after_base = 20.;
      run = { C.Config.default with C.Config.split_timeout = 5. };
    }
  in
  let last_report = ref None in
  List.iter
    (fun offered ->
      let svc = S.create ~obs:(Snapshot.obs ()) ~cfg ~testbed:(C.Testbed.uniform ~n:8 ~speed:500. ()) () in
      for i = 0 to offered - 1 do
        ignore
          (S.submit svc
             ~tenant:(Printf.sprintf "t%d" (i mod 3))
             ~priority:(if i mod 5 = 0 then J.High else J.Normal)
             (instance i))
      done;
      S.run svc;
      let jobs = S.jobs svc in
      let st = S.stats svc in
      let waits =
        List.filter_map
          (fun (j : J.t) ->
            match j.J.started_at with Some s -> Some (s -. j.J.submitted_at) | None -> None)
          jobs
      in
      let mean_wait =
        if waits = [] then 0. else List.fold_left ( +. ) 0. waits /. float (List.length waits)
      in
      let makespan =
        List.fold_left (fun acc (j : J.t) ->
            match j.J.finished_at with Some f -> Float.max acc f | None -> acc)
          0. jobs
      in
      let all_terminal = List.for_all J.is_terminal jobs in
      Printf.printf "%-8d %9d %6d %10d %9.1fs %9.1fs %10s\n%!" offered st.S.admitted st.S.shed
        st.S.completed mean_wait makespan
        (if all_terminal && st.S.hosts_free = st.S.hosts_total then "all-clean" else "LEAK");
      if offered = 32 then last_report := Some (S.report svc))
    [ 4; 8; 16; 32 ];
  (match !last_report with
  | Some doc when Snapshot.enabled () -> Snapshot.write "service" doc
  | _ -> ());
  (* Cache pass: resubmit a solved batch to a fresh service warmed with
     the same instances — zero subproblems are dispatched the second
     time. *)
  let svc = S.create ~cfg ~testbed:(C.Testbed.uniform ~n:8 ~speed:500. ()) () in
  for i = 0 to 7 do
    ignore (S.submit svc ~tenant:"warm" ~priority:J.Normal (instance i))
  done;
  S.run svc;
  let before = (S.stats svc).S.completed in
  let hits =
    List.length
      (List.filter
         (fun i -> match S.submit svc ~tenant:"again" ~priority:J.Normal (instance i) with
            | S.Cached _ -> true
            | _ -> false)
         [ 0; 1; 2; 3; 4; 5; 6; 7 ])
  in
  Printf.printf
    "\nresubmitting 8 solved instances: %d/8 served from the verdict cache,\n\
     %d runs before the resubmission and %d after (zero new dispatches)\n" hits before
    (S.stats svc).S.completed;
  Printf.printf
    "(admission control sheds the overflow up front — completions and waits stay pinned\n\
     to pool capacity instead of collapsing as offered load quadruples)\n"

(* C13: straggler defense.  One host turns into an extreme silent
   straggler — heartbeats and acks stay on time, compute collapses — so
   crash detection never fires and the tail of the run is hostage to
   the slowed host.  With the defense on (health-aware ranking, adaptive
   deadlines, hedged re-execution) the master clones the stuck branch to
   an idle healthy host and the first copy wins.  The claim: tail (p99
   over straggler placements) completion improves, the verdict never
   changes, and hedging is exactly-once — every launched hedge is
   fenced, the pool comes home. *)
let straggler () =
  Printf.printf "== C13: hedged re-execution under injected stragglers (10 hosts) ==\n\n";
  let module F = Grid.Fault in
  let cnf = W.Php.instance ~pigeons:8 ~holes:7 in
  let testbed () = C.Testbed.uniform ~n:10 ~speed:500. () in
  let no_hedge =
    {
      C.Config.default with
      C.Config.split_timeout = 2.;
      slice = 0.5;
      share_flush_interval = 1.;
      overall_timeout = 100_000.;
      nws_probe_interval = 5.;
      checkpoint = C.Config.Light;
      checkpoint_period = 5.;
      heartbeat_period = 2.;
      suspect_timeout = 30.;
      (* no clause sharing: a stuck branch cannot be refuted for free by
         an imported clause, which is exactly the regime hedging is for *)
      share_max_len = 0;
    }
  in
  let hedged_cfg =
    { no_hedge with C.Config.hedge = true; adaptive_timeouts = true; retry_jitter = 0.1 }
  in
  let baseline = C.Gridsat.solve ~config:no_hedge ~testbed:(testbed ()) cnf in
  Printf.printf "fault-free baseline: %s in %s s\n\n"
    (C.Gridsat.answer_string baseline.C.Master.answer)
    (String.trim (grid_time baseline));
  Printf.printf "%-10s %10s %10s %8s %8s %13s\n" "straggler" "no-hedge" "hedged" "hedges"
    "fenced" "exactly-once?";
  let rows = ref [] in
  let samples =
    List.map
      (fun host ->
        (* three consecutive stragglers per placement: enough pinned
           branches that split-stealing alone cannot absorb the damage *)
        let fault_plan =
          List.map (fun h -> F.Slow_host { host = h; at = 2.; factor = 10_000. }) [ host; host + 1; host + 2 ]
        in
        let slow = C.Gridsat.solve ~config:no_hedge ~fault_plan ~testbed:(testbed ()) cnf in
        let hedged = C.Gridsat.solve ~config:hedged_cfg ~fault_plan ~testbed:(testbed ()) cnf in
        let launched, fenced =
          List.fold_left
            (fun (l, f) e ->
              match e.C.Events.kind with
              | C.Events.Hedge_launched { pid; _ } -> (pid :: l, f)
              | C.Events.Hedge_cancelled { pid; _ } -> (l, pid :: f)
              | _ -> (l, f))
            ([], []) hedged.C.Master.events
        in
        let exactly_once =
          List.sort compare launched = List.sort compare fenced
          && List.length launched = hedged.C.Master.hedges
          && C.Gridsat.answer_string hedged.C.Master.answer
             = C.Gridsat.answer_string baseline.C.Master.answer
        in
        Printf.printf "host %-5d %10s %10s %8d %8d %13s\n%!" host
          (String.trim (grid_time slow))
          (String.trim (grid_time hedged))
          hedged.C.Master.hedges hedged.C.Master.hedge_cancellations
          (if exactly_once then "yes" else "NO");
        rows :=
          ( Printf.sprintf "host%d" host,
            Obs.Json.Obj
              [
                ("no_hedge_time", Obs.Json.Float slow.C.Master.time);
                ("hedged_time", Obs.Json.Float hedged.C.Master.time);
                ("hedges", Obs.Json.Int hedged.C.Master.hedges);
                ("fenced", Obs.Json.Int hedged.C.Master.hedge_cancellations);
                ("exactly_once", Obs.Json.Bool exactly_once);
              ] )
          :: !rows;
        (slow.C.Master.time, hedged.C.Master.time))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let p99 xs = List.fold_left Float.max 0. xs in
  let mean xs = List.fold_left ( +. ) 0. xs /. float (List.length xs) in
  let slow_times = List.map fst samples and hedged_times = List.map snd samples in
  Printf.printf
    "\np99 completion: %.1fs without hedging, %.1fs with — mean %.1fs vs %.1fs\n"
    (p99 slow_times) (p99 hedged_times) (mean slow_times) (mean hedged_times);
  Printf.printf
    "(the straggler is invisible to crash detection; only the duration-percentile\n\
     monitor catches it, and the clone races it on an idle healthy host)\n";
  (* A summary block with the tail percentiles joins the per-placement
     rows so `gridsat report --diff` can gate on a stable p99 leaf. *)
  let summary =
    Obs.Json.Obj
      [
        ( "no_hedge",
          Obs.Json.Obj
            [ ("mean", Obs.Json.Float (mean slow_times)); ("p99", Obs.Json.Float (p99 slow_times)) ]
        );
        ( "hedged",
          Obs.Json.Obj
            [
              ("mean", Obs.Json.Float (mean hedged_times));
              ("p99", Obs.Json.Float (p99 hedged_times));
            ] );
      ]
  in
  Snapshot.write "straggler" (Obs.Json.Obj (("summary", summary) :: List.rev !rows))

(* C14: hot-standby failover vs journal-replay restart.  The same master
   crash is injected into two otherwise identical runs per seed: one that
   waits for a cold replacement master to replay the journal (the C11
   path), and one with a hot standby that has been consuming shipped
   journal batches and promotes itself when the primary's lease expires.
   Downtime is measured the way a client feels it — from the crash to the
   first client re-adopted by a live master — and the claim is that the
   standby's p99 downtime sits strictly below the replay-restart
   baseline at equal fault seeds, with zero replication divergences. *)
let failover () =
  Printf.printf "== C14: hot-standby promotion vs replay-restart (8 hosts) ==\n\n";
  let module F = Grid.Fault in
  let cnf = W.Php.instance ~pigeons:7 ~holes:6 in
  let testbed () = C.Testbed.uniform ~n:8 ~speed:1000. () in
  let base seed =
    {
      C.Config.default with
      C.Config.split_timeout = 2.;
      slice = 0.5;
      overall_timeout = 100_000.;
      checkpoint = C.Config.Light;
      checkpoint_period = 5.;
      heartbeat_period = 2.;
      suspect_timeout = 30.;
      retry_base = 0.5;
      retry_max_attempts = 6;
      resync_grace = 5.;
      seed;
    }
  in
  (* the cold-replacement arm provisions a fresh master 12 virtual
     seconds after the crash; the standby arm never gets a replacement
     (restart_after = infinity) and must live off the promotion *)
  let cold_restart = 12. in
  let standby_cfg seed =
    { (base seed) with C.Config.standby = true; ship_interval = 1.; standby_lease = 4. }
  in
  let baseline = C.Gridsat.solve ~config:(base 0) ~testbed:(testbed ()) cnf in
  let t = baseline.C.Master.time in
  let crash_at = Float.max 4. (0.3 *. t) in
  Printf.printf "fault-free baseline: %s in %s s, crash injected at %.1fs\n\n"
    (C.Gridsat.answer_string baseline.C.Master.answer)
    (String.trim (grid_time baseline))
    crash_at;
  Printf.printf "%-6s %-8s %-8s %10s %10s %8s %8s %8s\n" "seed" "restart" "standby" "down(re)"
    "down(st)" "ships" "promote" "diverge";
  let downtime (r : C.Master.result) =
    let crash = ref None and back = ref None in
    List.iter
      (fun e ->
        match e.C.Events.kind with
        | C.Events.Master_crashed when !crash = None -> crash := Some e.C.Events.time
        | C.Events.Client_resynced _ when !back = None && !crash <> None ->
            back := Some e.C.Events.time
        | _ -> ())
      r.C.Master.events;
    match (!crash, !back) with Some c, Some b -> b -. c | _ -> nan
  in
  let rows = ref [] in
  let samples =
    List.map
      (fun seed ->
        (* seeded background loss keeps the per-seed downtimes from being
           degenerate: retries around the crash window land differently
           under each fault RNG, so the p99 is a real tail, not a copy of
           the mean *)
        let loss =
          F.Drop_messages { src_site = None; dst_site = None; p = 0.05; from_t = 0.; until_t = infinity }
        in
        let restart =
          C.Gridsat.solve ~config:(base seed)
            ~fault_plan:[ loss; F.Crash_master { at = crash_at; restart_after = cold_restart } ]
            ~testbed:(testbed ()) cnf
        in
        let standby =
          C.Gridsat.solve ~config:(standby_cfg seed)
            ~fault_plan:[ loss; F.Crash_master { at = crash_at; restart_after = infinity } ]
            ~testbed:(testbed ()) cnf
        in
        let d_re = downtime restart and d_st = downtime standby in
        Printf.printf "%-6d %-8s %-8s %9.1fs %9.1fs %8d %8d %8d\n%!" seed
          (String.trim (grid_time restart))
          (String.trim (grid_time standby))
          d_re d_st standby.C.Master.ships standby.C.Master.promotions
          standby.C.Master.replication_divergences;
        rows :=
          ( Printf.sprintf "seed%d" seed,
            Obs.Json.Obj
              [
                ("restart_downtime", Obs.Json.Float d_re);
                ("standby_downtime", Obs.Json.Float d_st);
                ("restart_time", Obs.Json.Float restart.C.Master.time);
                ("standby_time", Obs.Json.Float standby.C.Master.time);
                ("ships", Obs.Json.Int standby.C.Master.ships);
                ("promotions", Obs.Json.Int standby.C.Master.promotions);
                ("divergences", Obs.Json.Int standby.C.Master.replication_divergences);
              ] )
          :: !rows;
        let ok =
          C.Gridsat.answer_string restart.C.Master.answer
          = C.Gridsat.answer_string baseline.C.Master.answer
          && C.Gridsat.answer_string standby.C.Master.answer
             = C.Gridsat.answer_string baseline.C.Master.answer
          && standby.C.Master.promotions = 1
          && standby.C.Master.replication_divergences = 0
        in
        (d_re, d_st, ok))
      [ 0; 3; 7; 11; 23 ]
  in
  let p99 xs = List.fold_left Float.max 0. xs in
  let mean xs = List.fold_left ( +. ) 0. xs /. float (List.length xs) in
  let re = List.map (fun (d, _, _) -> d) samples in
  let st = List.map (fun (_, d, _) -> d) samples in
  let all_ok = List.for_all (fun (_, _, ok) -> ok) samples in
  Printf.printf
    "\np99 downtime: %.1fs replay-restart, %.1fs hot standby — mean %.1fs vs %.1fs\n"
    (p99 re) (p99 st) (mean re) (mean st);
  Printf.printf "standby p99 strictly below replay-restart: %s\n"
    (if p99 st < p99 re then "yes" else "NO");
  Printf.printf "verdicts preserved, one promotion each, zero divergences: %s\n"
    (if all_ok then "yes" else "NO");
  Printf.printf
    "(the standby's shadow state machine is already caught up when the lease\n\
    \ expires, so promotion pays only the lease + resync grace, never the\n\
    \ replacement provisioning + journal replay of the cold path)\n";
  let summary =
    Obs.Json.Obj
      [
        ( "restart",
          Obs.Json.Obj [ ("mean", Obs.Json.Float (mean re)); ("p99", Obs.Json.Float (p99 re)) ] );
        ( "standby",
          Obs.Json.Obj [ ("mean", Obs.Json.Float (mean st)); ("p99", Obs.Json.Float (p99 st)) ] );
      ]
  in
  Snapshot.write "failover" (Obs.Json.Obj (("summary", summary) :: List.rev !rows))

(* C15: resource-exhaustion defense.  Per seed, the same instance runs
   unconstrained and then under the full resource gauntlet — per-link
   share budget, bounded outage outbox, a choked fabric and a mid-run
   disk-full window.  The claim: every verdict is unchanged, the largest
   byte total any share link carried inside one window never exceeds the
   budget (it is bounded by construction, so this doubles as a harness
   check), no queue grows without bound, the journal enters and exits
   degraded mode exactly inside the injected disk-full window, and the
   whole constrained run is byte-stable across same-seed repeats. *)
let resource () =
  Printf.printf "== C15: resource exhaustion — budgets, quotas, chokes (6 hosts) ==\n\n";
  let module F = Grid.Fault in
  let cnf = W.Php.instance ~pigeons:7 ~holes:6 in
  let testbed () = C.Testbed.uniform ~n:6 ~speed:500. () in
  let share_budget = 512 and outbox_cap = 8 in
  let base seed =
    {
      C.Config.default with
      C.Config.split_timeout = 2.;
      slice = 0.5;
      share_flush_interval = 1.;
      overall_timeout = 100_000.;
      checkpoint = C.Config.Light;
      checkpoint_period = 5.;
      heartbeat_period = 5.;
      suspect_timeout = 30.;
      seed;
    }
  in
  let constrained seed =
    {
      (base seed) with
      C.Config.share_budget;
      share_window = 5.;
      outbox_cap;
    }
  in
  Printf.printf "%-6s %-8s %-8s %7s %9s %9s %7s %8s %8s\n" "seed" "free" "bound" "shed"
    "linkpeak" "dups" "outbox" "degraded" "stable";
  let rows = ref [] in
  let ok_all = ref true in
  List.iter
    (fun seed ->
      let free = C.Gridsat.solve ~config:(base seed) ~testbed:(testbed ()) cnf in
      let t = free.C.Master.time in
      let disk_at = 0.3 *. t and disk_until = 0.6 *. t in
      let plan =
        [
          F.Choke_link
            {
              src_site = None;
              dst_site = None;
              bytes_per_window = 4096;
              window = 2.;
              from_t = 0.;
              until_t = Float.max 3. (0.25 *. t);
            };
          F.Disk_full { at = disk_at; quota = 1; until_t = disk_until };
        ]
      in
      let run () =
        C.Gridsat.solve ~config:(constrained seed) ~fault_plan:plan ~testbed:(testbed ()) cnf
      in
      let r = run () in
      let again = run () in
      let event_time p =
        List.fold_left
          (fun acc (e : C.Events.t) ->
            match acc with None when p e.C.Events.kind -> Some e.C.Events.time | _ -> acc)
          None r.C.Master.events
      in
      let degraded_at =
        event_time (function C.Events.Journal_degraded _ -> true | _ -> false)
      in
      let recovered_at =
        event_time (function C.Events.Journal_recovered _ -> true | _ -> false)
      in
      let degraded_in_window =
        match (degraded_at, recovered_at) with
        | Some d, Some rcv ->
            d >= disk_at -. 1e-9 && d <= disk_until +. 1e-9 && rcv >= disk_until -. 1e-9
        | _ -> false
      in
      let stable =
        r.C.Master.events = again.C.Master.events
        && r.C.Master.share_bytes = again.C.Master.share_bytes
        && r.C.Master.shares_shed = again.C.Master.shares_shed
        && r.C.Master.journal_bytes = again.C.Master.journal_bytes
      in
      let ok =
        C.Gridsat.answer_string r.C.Master.answer
        = C.Gridsat.answer_string free.C.Master.answer
        && r.C.Master.share_link_peak <= share_budget
        && r.C.Master.outbox_peak <= outbox_cap
        && degraded_in_window && stable
      in
      ok_all := !ok_all && ok;
      Printf.printf "%-6d %-8s %-8s %7d %9d %9d %7d %8s %8s\n%!" seed
        (String.trim (grid_time free))
        (String.trim (grid_time r))
        r.C.Master.shares_shed r.C.Master.share_link_peak r.C.Master.dup_suppressed
        r.C.Master.outbox_peak
        (if degraded_in_window then "in-win" else "NO")
        (if stable then "yes" else "NO");
      rows :=
        ( Printf.sprintf "seed%d" seed,
          Obs.Json.Obj
            [
              ("free_time", Obs.Json.Float free.C.Master.time);
              ("bound_time", Obs.Json.Float r.C.Master.time);
              ("shares_shed", Obs.Json.Int r.C.Master.shares_shed);
              ("share_bytes", Obs.Json.Int r.C.Master.share_bytes);
              ("share_link_peak", Obs.Json.Int r.C.Master.share_link_peak);
              ("dup_suppressed", Obs.Json.Int r.C.Master.dup_suppressed);
              ("outbox_peak", Obs.Json.Int r.C.Master.outbox_peak);
              ("forced_compactions", Obs.Json.Int r.C.Master.forced_compactions);
              ("degraded_entries", Obs.Json.Int r.C.Master.degraded_entries);
              ("journal_bytes", Obs.Json.Int r.C.Master.journal_bytes);
            ] )
        :: !rows)
    [ 0; 3; 7; 11; 23 ];
  Printf.printf
    "\nverdicts preserved, link peaks <= %d B/window, outbox peaks <= %d,\n\
     degraded mode entered and left inside the injected window, byte-stable: %s\n"
    share_budget outbox_cap
    (if !ok_all then "yes" else "NO");
  Printf.printf
    "(exhaustion degrades sharing and durability headroom, never correctness:\n\
    \ shed traffic is the shortest-clause prefix's complement and control\n\
    \ envelopes are unsheddable by construction)\n";
  let summary = Obs.Json.Obj [ ("all_ok", Obs.Json.Bool !ok_all) ] in
  Snapshot.write "resource" (Obs.Json.Obj (("summary", summary) :: List.rev !rows))
