(* Per-claim metric snapshots: the perf trajectory across PRs.

   When BENCH_SNAPSHOT_DIR is set, instrumented claims write their run
   report (or stats rows) to $BENCH_SNAPSHOT_DIR/BENCH_<claim>.json so
   successive revisions can be diffed metric-by-metric.  Unset, every
   call is a no-op and the claims run exactly as before. *)

let dir () = Sys.getenv_opt "BENCH_SNAPSHOT_DIR"

let enabled () = dir () <> None

let obs () = if enabled () then Obs.create () else Obs.disabled

let write claim doc =
  match dir () with
  | None -> ()
  | Some d ->
      let path = Filename.concat d (Printf.sprintf "BENCH_%s.json" claim) in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "(snapshot: %s)\n%!" path
