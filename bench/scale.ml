(* Calibration constants tying the paper's wall-clock world to the
   benchmark's virtual world.  One paper second = 1/time_scale virtual
   seconds; one host "speed" unit = one solver propagation per virtual
   second; testbed memory is divided by mem_div so that memory exhaustion
   happens at laptop-sized clause databases.  EXPERIMENTS.md discusses the
   choices. *)

let time_scale = 40.

let paper_seconds s = s /. time_scale

(* zChaff ran with an 18000 s allowance; GridSAT with 6000 s on the
   solvable set and 12000 s on the challenge set. *)
let zchaff_timeout = paper_seconds 18_000.

let gridsat_timeout_solvable = paper_seconds 6_000.

let gridsat_timeout_challenge = paper_seconds 12_000.

let mem_div = 64

let scale_memory (tb : Gridsat_core.Testbed.t) =
  let scale_host (h : Gridsat_core.Testbed.host) =
    {
      h with
      Gridsat_core.Testbed.resource =
        {
          h.Gridsat_core.Testbed.resource with
          Grid.Resource.mem_bytes =
            max 1 (h.Gridsat_core.Testbed.resource.Grid.Resource.mem_bytes / mem_div);
        };
    }
  in
  {
    tb with
    Gridsat_core.Testbed.hosts = List.map scale_host tb.Gridsat_core.Testbed.hosts;
    batch =
      Option.map
        (fun (b : Gridsat_core.Testbed.batch_spec) ->
          { b with Gridsat_core.Testbed.node_mem = max 1 (b.Gridsat_core.Testbed.node_mem / mem_div) })
        tb.Gridsat_core.Testbed.batch;
  }

let grads () = scale_memory (Gridsat_core.Testbed.grads ())

(* Table 2 apparatus: 27 faster interactive hosts plus a Blue Horizon
   batch job.  The queue wait and job duration are scaled so the paper's
   story fits the budget: the interactive grid runs alone first, then the
   batch nodes join, and the job expires well before the paper's 33 h.
   The queue wait is an exponential draw with the given mean; with the
   default seed the realised wait is ~550 virtual seconds — comfortably
   larger than Table 1's 300 vs challenge window, as in the paper (the
   33 h queue wait dwarfed the 12000 s Table 1 budget). *)
let set2_batch_wait = 1008.

let set2_batch_duration = 400.

(* the run ends when the batch job expires (plus a small margin) *)
let set2_overall_timeout = 1000.

let set2 () =
  scale_memory
    (Gridsat_core.Testbed.set2 ~batch_nodes:16 ~batch_mean_wait:set2_batch_wait
       ~batch_duration:set2_batch_duration ())

let base_config =
  {
    Gridsat_core.Config.default with
    Gridsat_core.Config.split_timeout = paper_seconds 100.;
    slice = 1.0;
    share_flush_interval = 2.0;
    nws_probe_interval = 5.0;
    min_client_memory = 0;
    mem_headroom = 0.8;
  }

let t1_config ~timeout = { base_config with Gridsat_core.Config.overall_timeout = timeout }

let t2_config ~timeout =
  {
    base_config with
    Gridsat_core.Config.share_max_len = 3;
    overall_timeout = timeout;
    (* a different base seed: the second experiment set is a different
       campaign, with its own run-to-run variance *)
    seed = 1;
    solver_config = { base_config.Gridsat_core.Config.solver_config with Sat.Solver.seed = 1000 };
  }

let row_timeout (e : Workloads.Registry.entry) =
  match e.Workloads.Registry.category with
  | Workloads.Registry.Both_solved -> gridsat_timeout_solvable
  | Workloads.Registry.Gridsat_only | Workloads.Registry.Neither_solved ->
      gridsat_timeout_challenge
