(* Reproduction of Table 2: the hard "remaining" instances on the second
   apparatus — 27 faster interactive hosts plus an IBM Blue Horizon batch
   job (share length 3).  The interactive grid covers the batch queue
   wait; if an instance is still open when the job starts, the batch nodes
   join the computation, and the run ends when the job expires. *)

module R = Workloads.Registry
module C = Gridsat_core

let run () =
  Printf.printf "== Table 2: testbed + Blue Horizon on the harder problems ==\n";
  Printf.printf
    "(batch job: 16 nodes, mean queue wait %.0f vs (~550 realised), duration %.0f vs; share length 3)\n\n"
    Scale.set2_batch_wait Scale.set2_batch_duration;
  Printf.printf "%-32s %-6s | %9s %6s %7s | %9s | %s\n" "File name" "status" "GridSAT" "maxcl"
    "batch?" "paper" "real";
  Printf.printf "%s\n" (String.make 92 '-');
  let testbed = Scale.set2 () in
  let results =
    List.map
      (fun (e : R.entry) ->
        let t0 = Unix.gettimeofday () in
        let cnf = e.R.gen () in
        let timeout = Scale.set2_overall_timeout in
        let config = Scale.t2_config ~timeout in
        let grid = C.Gridsat.solve ~config ~testbed cnf in
        let used_batch =
          List.exists
            (fun ev ->
              match ev.C.Events.kind with
              | C.Events.Batch_job_started _ -> true
              | _ -> false)
            grid.C.Master.events
        in
        let cancelled =
          List.exists
            (fun ev ->
              match ev.C.Events.kind with C.Events.Batch_job_cancelled -> true | _ -> false)
            grid.C.Master.events
        in
        let batch_note =
          if cancelled && not used_batch then "no"
          else if used_batch then "yes"
          else "-"
        in
        Printf.printf "%-32s %-6s | %9s %6d %7s | %9s | %.0fs\n%!" e.R.name
          (Runner.status_string e.R.status)
          (Runner.grid_time_string grid)
          grid.C.Master.max_clients batch_note
          (Runner.paper_time_string e.R.paper_gridsat)
          (Unix.gettimeofday () -. t0);
        (e, grid, used_batch))
      R.table2
  in
  let solved =
    List.filter
      (fun (_, (g : C.Master.result), _) ->
        match g.C.Master.answer with C.Master.Unknown _ -> false | _ -> true)
      results
  in
  Printf.printf "\nsolved %d/%d; paper solved 3/9 (rand-net70, glassybp before the batch job;\n"
    (List.length solved) (List.length results);
  Printf.printf "par32-1-c only after the Blue Horizon nodes joined)\n";
  results
