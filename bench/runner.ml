(* Shared row runner for the table reproductions: times the zChaff-model
   baseline on the fastest host and GridSAT on the given testbed, and
   renders paper-vs-measured rows. *)

module R = Workloads.Registry
module C = Gridsat_core

type row = {
  entry : R.entry;
  baseline : C.Baseline.run;
  grid : C.Master.result;
  real_seconds : float;
}

let status_string = function R.Sat -> "SAT" | R.Unsat -> "UNSAT" | R.Open -> "*"

let paper_time_string = function
  | R.Seconds s -> Printf.sprintf "%.0f" s
  | R.Timeout -> "TIME_OUT"
  | R.Memout -> "MEM_OUT"
  | R.Hours_bh -> "33h+8hBH"

let baseline_string (b : C.Baseline.run) =
  match b.C.Baseline.outcome with
  | C.Baseline.Sat _ -> Printf.sprintf "%.0f" b.C.Baseline.time
  | C.Baseline.Unsat -> Printf.sprintf "%.0f" b.C.Baseline.time
  | C.Baseline.Timeout -> "TIME_OUT"
  | C.Baseline.Memout -> "MEM_OUT"

let grid_time_string (g : C.Master.result) =
  match g.C.Master.answer with
  | C.Master.Sat _ | C.Master.Unsat -> Printf.sprintf "%.0f" g.C.Master.time
  | C.Master.Unknown _ -> "TIME_OUT"

let measured_status (row : row) =
  (* cross-check the baseline and grid answers against the expected status *)
  let of_grid =
    match row.grid.C.Master.answer with
    | C.Master.Sat _ -> Some R.Sat
    | C.Master.Unsat -> Some R.Unsat
    | C.Master.Unknown _ -> None
  in
  let of_baseline =
    match row.baseline.C.Baseline.outcome with
    | C.Baseline.Sat _ -> Some R.Sat
    | C.Baseline.Unsat -> Some R.Unsat
    | C.Baseline.Timeout | C.Baseline.Memout -> None
  in
  match (of_grid, of_baseline) with Some s, _ | None, Some s -> Some s | None, None -> None

let status_consistent row =
  match (measured_status row, row.entry.R.status) with
  | None, _ -> true
  | Some R.Sat, R.Sat | Some R.Unsat, R.Unsat -> true
  | Some _, R.Open -> true
  | Some _, _ -> false

let speedup row =
  match (row.baseline.C.Baseline.outcome, row.grid.C.Master.answer) with
  | (C.Baseline.Sat _ | C.Baseline.Unsat), (C.Master.Sat _ | C.Master.Unsat) ->
      Some (row.baseline.C.Baseline.time /. Float.max 1e-9 row.grid.C.Master.time)
  | _ -> None

let run_row ?(testbed = Scale.grads ()) ?config (e : R.entry) =
  let t0 = Unix.gettimeofday () in
  let cnf = e.R.gen () in
  let baseline =
    C.Baseline.run ~timeout:Scale.zchaff_timeout ~host:(C.Testbed.fastest testbed) cnf
  in
  let config =
    match config with Some c -> c | None -> Scale.t1_config ~timeout:(Scale.row_timeout e)
  in
  let grid = C.Gridsat.solve ~config ~testbed cnf in
  { entry = e; baseline; grid; real_seconds = Unix.gettimeofday () -. t0 }

let category_header = function
  | R.Both_solved -> "Problems solved by zChaff and GridSAT"
  | R.Gridsat_only -> "Problems solved by GridSAT only"
  | R.Neither_solved -> "Remaining problems"

let print_table1_header () =
  Printf.printf "%-32s %-6s | %8s %8s %7s %5s | %8s %8s %5s | %s\n" "File name" "status"
    "zChaff" "GridSAT" "speedup" "maxcl" "paper-z" "paper-g" "p-cl" "ok";
  Printf.printf "%s\n" (String.make 118 '-')

let print_row (row : row) =
  let e = row.entry in
  let ok = if status_consistent row then "" else "  STATUS-MISMATCH!" in
  Printf.printf "%-32s %-6s | %8s %8s %7s %5d | %8s %8s %5s | %.0fs%s\n%!" e.R.name
    (status_string e.R.status) (baseline_string row.baseline) (grid_time_string row.grid)
    (match speedup row with Some s -> Printf.sprintf "%.2f" s | None -> "-")
    row.grid.C.Master.max_clients
    (paper_time_string e.R.paper_zchaff)
    (paper_time_string e.R.paper_gridsat)
    (match e.R.paper_max_clients with Some c -> string_of_int c | None -> "-")
    row.real_seconds ok

(* Category agreement summary: does the measured row land in the paper's
   band (solved-by-both / gridsat-only / neither)? *)
let measured_category (row : row) =
  let base_solved =
    match row.baseline.C.Baseline.outcome with
    | C.Baseline.Sat _ | C.Baseline.Unsat -> true
    | C.Baseline.Timeout | C.Baseline.Memout -> false
  in
  let grid_solved =
    match row.grid.C.Master.answer with
    | C.Master.Sat _ | C.Master.Unsat -> true
    | C.Master.Unknown _ -> false
  in
  match (base_solved, grid_solved) with
  | true, true -> R.Both_solved
  | false, true -> R.Gridsat_only
  | _, false -> R.Neither_solved

let print_category_summary rows =
  let agree =
    List.length (List.filter (fun r -> measured_category r = r.entry.R.category) rows)
  in
  Printf.printf "\ncategory agreement: %d/%d rows land in the paper's band\n" agree
    (List.length rows);
  List.iter
    (fun r ->
      if measured_category r <> r.entry.R.category then
        Printf.printf "  deviating: %-32s paper=%s measured=%s\n" r.entry.R.name
          (category_header r.entry.R.category)
          (category_header (measured_category r)))
    rows
