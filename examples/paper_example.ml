(* Replays the worked example of the paper's Section 2.3 / Figure 1:
   conflict analysis with FirstUIP learning and non-chronological
   backtracking on a 9-clause, 14-variable formula.

   Note: the paper's prose assigns V10 := false while its figure and the
   learned clause (~V10 + ~V7 + V8 + V9 + ~V5) require V10 to be true on
   the reason side; we follow the figure (clause 8 is (~V10 | ~V13) so the
   prose's "clause 8 implies ~V13" step still happens).

   Run with: dune exec examples/paper_example.exe *)

module T = Sat.Types
module Solver = Sat.Solver

let formula =
  Sat.Cnf.make ~nvars:14
    [
      [ -11; 12 ] (* c1 *);
      [ -12; -10; 5 ] (* c2 *);
      [ -5; -7; 1 ] (* c3 *);
      [ -5; 8; 2 ] (* c4 *);
      [ 4; -6; 14 ] (* c5 *);
      [ -1; -10; 9; 3 ] (* c6 *);
      [ -2; -3 ] (* c7 *);
      [ -10; -13 ] (* c8 *);
      [ 14 ] (* c9 *);
    ]

let lit_name l = Printf.sprintf "%sV%d" (if T.is_pos l then "" else "~") (T.var l)

let print_stack s =
  Format.printf "  decision stack:@.";
  let by_level = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let lvl = Solver.level_of_var s (T.var l) in
      Hashtbl.replace by_level lvl (l :: (Option.value ~default:[] (Hashtbl.find_opt by_level lvl))))
    (Solver.trail_literals s);
  for lvl = 0 to Solver.decision_level s do
    match Hashtbl.find_opt by_level lvl with
    | None -> ()
    | Some lits ->
        Format.printf "    level %d: %s@." lvl
          (String.concat " " (List.rev_map lit_name lits))
  done

let () =
  Format.printf "=== Figure 1: conflict analysis with learning ===@.@.";
  let s = Solver.create formula in
  Format.printf "after reading the formula, clause 9 (V14) is unit:@.";
  print_stack s;

  Format.printf "@.making the scripted decisions of the example:@.";
  List.iter
    (fun d ->
      Solver.decide_manual s (T.lit_of_int d);
      (match Solver.propagate_manual s with
      | `Ok -> ()
      | `Conflict _ -> failwith "unexpected conflict");
      Format.printf "  decide %s (level %d)@." (lit_name (T.lit_of_int d))
        (Solver.decision_level s))
    [ 10; 7; -8; -9; 6 ];
  print_stack s;

  Format.printf "@.level 6: decide V11 -> implication cascade -> conflict@.";
  Solver.decide_manual s (T.lit_of_int 11);
  match Solver.propagate_manual s with
  | `Ok -> failwith "expected the example's conflict"
  | `Conflict info ->
      Format.printf "@.implication graph at the conflict (level-6 nodes):@.";
      List.iter
        (fun (v, lvl, antecedent) ->
          if lvl = 6 then
            match antecedent with
            | None -> Format.printf "    V%d  <- decision@." v
            | Some lits -> Format.printf "    V%d  <- implied by %a@." v T.pp_clause lits)
        info.Solver.implication_graph;
      Format.printf "@.conflict: V%d implied both ways (clauses 6 and 7)@."
        info.Solver.conflicting_var;
      Format.printf "conflicting clause: %a@." T.pp_clause info.Solver.conflicting_clause;
      Format.printf "@.FirstUIP node: V%d (every path from V11 to the conflict passes it)@."
        info.Solver.uip_var;
      Format.printf "learned clause:  %a   (paper: (~V10 | ~V7 | V8 | V9 | ~V5))@."
        T.pp_clause info.Solver.learned;
      Format.printf "backjump: to level %d, the level of ~V9@." info.Solver.backjump_level;
      Format.printf "@.after backjumping, the learned clause asserts ~V5:@.";
      (match Solver.propagate_manual s with `Ok -> () | `Conflict _ -> failwith "unexpected");
      print_stack s;
      Format.printf "@.(search can now continue; the formula is satisfiable)@.";
      (match Solver.solve s with
      | Solver.Sat m -> Format.printf "final answer: SAT, e.g. %a@." Sat.Model.pp m
      | _ -> failwith "expected sat")
