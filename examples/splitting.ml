(* Demonstrates the paper's Figure 2: splitting a running solver's search
   space into two subproblems, with inconsequential-clause removal.

   Run with: dune exec examples/splitting.exe *)

module T = Sat.Types
module Solver = Sat.Solver
module Sub = Gridsat_core.Subproblem

let lits_string lits = String.concat " " (List.map (fun l -> string_of_int (T.to_int l)) lits)

let () =
  Format.printf "=== Figure 2: splitting a problem between two clients ===@.@.";
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  Format.printf "instance: pigeonhole 7/6 — %d variables, %d clauses@.@." (Sat.Cnf.nvars cnf)
    (Sat.Cnf.nclauses cnf);
  let solver = Solver.create cnf in
  (* run until the solver has built up a decision stack *)
  let rec advance () =
    match Solver.run solver ~budget:200 with
    | Solver.Budget_exhausted -> if Solver.decision_level solver < 3 then advance ()
    | _ -> failwith "instance solved before we could split (unexpected here)"
  in
  advance ();
  Format.printf "client A has been searching for a while:@.";
  Format.printf "  decision level: %d@." (Solver.decision_level solver);
  Format.printf "  root facts:  [%s]@." (lits_string (Solver.root_facts solver));
  Format.printf "  learned clauses so far: %d@." (Solver.n_learned solver);
  Format.printf "  clause-database size: %d bytes@.@." (Solver.db_bytes solver);

  let before = List.length (Solver.active_clauses solver) in
  match Sub.split_from solver with
  | None -> failwith "no decision to split on"
  | Some sp ->
      Format.printf "split! client A keeps its first-decision branch:@.";
      Format.printf "  A's root facts: [%s]@." (lits_string (Solver.root_facts solver));
      Format.printf "  A's guiding path (committed branch): [%s]@.@."
        (lits_string (Solver.root_path solver));
      Format.printf "the complementary subproblem goes to client B:@.";
      Format.printf "  B's root facts: [%s]@." (lits_string sp.Sub.facts);
      Format.printf "  B's guiding path: [%s]  (complement of A's first decision)@."
        (lits_string sp.Sub.path);
      Format.printf "  clauses transferred: %d of %d (satisfied ones removed)@."
        (Sub.nclauses sp) before;
      Format.printf "  transfer size: %d bytes@.@." (Sub.bytes sp);

      (* both sides now run to completion; the instance is UNSAT so both
         branches must be exhausted *)
      let b = Sub.to_solver ~config:Solver.default_config sp in
      let run name s =
        match Solver.solve s with
        | Solver.Unsat -> Format.printf "client %s: subproblem UNSAT@." name
        | Solver.Sat _ -> Format.printf "client %s: found a model@." name
        | _ -> assert false
      in
      run "A" solver;
      run "B" b;
      Format.printf "both branches exhausted: the instance is UNSAT@."
