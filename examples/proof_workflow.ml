(* UNSAT certification workflow: preprocess a formula, solve it with DRUP
   proof logging, and verify the proof with the independent checker — the
   trust story the 2003 paper could not yet offer for UNSAT answers.

   Run with: dune exec examples/proof_workflow.exe *)

let () =
  Format.printf "=== certifying an UNSAT answer end to end ===@.@.";
  let cnf = Workloads.Php.instance ~pigeons:8 ~holes:7 in
  Format.printf "instance: pigeonhole 8/7 (%d vars, %d clauses) — provably unsatisfiable@.@."
    (Sat.Cnf.nvars cnf) (Sat.Cnf.nclauses cnf);

  (* 1. preprocessing *)
  let pre = Sat.Preprocess.run cnf in
  Format.printf "preprocessing: %d -> %d clauses (%d vars eliminated, %d subsumed)@."
    pre.Sat.Preprocess.clauses_before pre.Sat.Preprocess.clauses_after
    pre.Sat.Preprocess.eliminated pre.Sat.Preprocess.subsumed;

  (* 2. solve the simplified formula with proof logging *)
  let config = { Sat.Solver.default_config with Sat.Solver.emit_proof = true } in
  let solver = Sat.Solver.create ~config pre.Sat.Preprocess.cnf in
  (match Sat.Solver.solve solver with
  | Sat.Solver.Unsat -> Format.printf "solver: UNSATISFIABLE@."
  | _ -> failwith "expected unsat");
  let stats = Sat.Solver.stats solver in
  Format.printf "search: %d conflicts, %d propagations@." stats.Sat.Stats.conflicts
    stats.Sat.Stats.propagations;

  (* 3. verify the DRUP proof with the independent checker *)
  let proof = Sat.Solver.proof solver in
  Format.printf "proof: %d steps (%d bytes as DRUP text)@." (List.length proof)
    (String.length (Sat.Drup.to_string proof));
  (match Sat.Drup.check pre.Sat.Preprocess.cnf proof with
  | Ok () -> Format.printf "checker: VERIFIED — the UNSAT answer is certified@."
  | Error e -> Format.printf "checker: FAILED (%s)@." e);

  (* 4. and the preprocessor's own steps are certifiable too: the original
     formula implies every simplified clause *)
  let spot_check =
    List.for_all
      (fun clause -> Sat.Drup.check_clause_rup cnf [] clause)
      (List.filteri (fun i _ -> i < 20) (Sat.Cnf.clauses pre.Sat.Preprocess.cnf))
  in
  Format.printf "preprocessed clauses RUP-check against the original: %b@." spot_check
