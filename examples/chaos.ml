(* GridSAT under fire: a run with crashes, a site partition, message
   loss and a master outage injected, narrated through the
   failure-detection and recovery events.

   Four faults are scripted against the simulation clock:
   - the busiest client is crashed (silently) mid-search,
   - the "west" site is partitioned off the grid for 60 s,
   - 10% of all messages are dropped for the whole run,
   - the master itself is crashed late in the run and restarted 20 s
     later from its write-ahead journal.

   The run must still terminate with the fault-free answer: the master's
   heartbeat lease detects the crash, the subproblem is recovered from
   its checkpoint, the ack/retry channel pushes critical messages
   through the lossy links, and the replacement master re-adopts the
   surviving clients' work through the resync protocol.

   Run with: dune exec examples/chaos.exe *)

module C = Gridsat_core
module F = Grid.Fault

(* Eight uniform hosts across two sites, master on the east side. *)
let testbed () =
  let base = C.Testbed.uniform ~n:8 ~speed:500. () in
  let hosts =
    List.mapi
      (fun i (h : C.Testbed.host) ->
        let r = h.C.Testbed.resource in
        let site = if i < 4 then "east" else "west" in
        {
          h with
          C.Testbed.resource =
            Grid.Resource.make ~id:r.Grid.Resource.id ~name:r.Grid.Resource.name ~site
              ~speed:r.Grid.Resource.speed ~mem_bytes:r.Grid.Resource.mem_bytes
              ~kind:r.Grid.Resource.kind;
        })
      base.C.Testbed.hosts
  in
  { base with C.Testbed.name = "chaos-demo"; master_site = "east"; hosts }

let config =
  {
    C.Config.default with
    C.Config.split_timeout = 2.;
    slice = 0.5;
    share_flush_interval = 1.;
    overall_timeout = 100_000.;
    nws_probe_interval = 5.;
    checkpoint = C.Config.Light;
    checkpoint_period = 5.;
    heartbeat_period = 5.;
    (* the lease must outlive the 60 s partition, or the west side would
       be falsely written off wholesale *)
    suspect_timeout = 120.;
  }

let () =
  Format.printf "=== GridSAT vs chaos: crash + partition + 10%% message loss ===@.@.";
  let cnf = Workloads.Php.instance ~pigeons:7 ~holes:6 in
  Format.printf "instance: pigeonhole 7/6 (%d vars, %d clauses)@.@." (Sat.Cnf.nvars cnf)
    (Sat.Cnf.nclauses cnf);

  Format.printf "--- fault-free reference run ---@.";
  let clean = C.Gridsat.solve ~config ~testbed:(testbed ()) cnf in
  Format.printf "answer: %s in %.1f virtual seconds@.@."
    (C.Gridsat.answer_string clean.C.Master.answer)
    clean.C.Master.time;

  (* scale the scripted faults to the reference duration so they land
     mid-search on any machine *)
  let t = clean.C.Master.time in
  let p_from = 0.25 *. t and p_until = (0.25 *. t) +. 60. in
  let m_at = Float.max (p_until +. 10.) (0.6 *. t) in
  let fault_plan =
    [
      F.Partition_site { site = "west"; from_t = p_from; until_t = p_until };
      F.Drop_messages { src_site = None; dst_site = None; p = 0.1; from_t = 0.; until_t = infinity };
      F.Crash_master { at = m_at; restart_after = 20. };
    ]
  in
  Format.printf "--- chaos run ---@.";
  Format.printf
    "plan: partition west [%.0f s, %.0f s], drop 10%% of messages, crash busiest,@.\
    \      crash the master at %.0f s and restart it 20 s later@.@."
    p_from p_until m_at;
  let crashed = ref None in
  let on_master m =
    (* crash whichever client is busiest once the search is underway *)
    C.Master.schedule m ~delay:(0.15 *. t) (fun () ->
        if not (C.Master.finished m) then
          match C.Master.busy_client_ids m with
          | [] -> ()
          | id :: _ ->
              crashed := Some id;
              C.Master.crash_host m id)
  in
  let r = C.Gridsat.solve ~config ~fault_plan ~on_master ~testbed:(testbed ()) cnf in

  let interesting = function
    | C.Events.Host_crashed _ | C.Events.Host_hung _ | C.Events.Client_suspected _
    | C.Events.False_suspicion _ | C.Events.Recovered_from_checkpoint _
    | C.Events.Recovery_requeued _ | C.Events.Orphan_returned _ | C.Events.Message_given_up _
    | C.Events.Master_crashed | C.Events.Master_restarted | C.Events.Master_outage_detected _
    | C.Events.Client_resynced _ | C.Events.Rederived_from_lineage _ | C.Events.Terminated _ ->
        true
    | _ -> false
  in
  Format.printf "--- detection -> recovery timeline ---@.";
  List.iter
    (fun e -> if interesting e.C.Events.kind then Format.printf "%a@." C.Events.pp e)
    r.C.Master.events;
  let retries =
    List.length
      (List.filter
         (fun e -> match e.C.Events.kind with C.Events.Message_retried _ -> true | _ -> false)
         r.C.Master.events)
  in
  Format.printf "@.--- damage report ---@.";
  (match !crashed with
  | Some id -> Format.printf "crashed client:    %d@." id
  | None -> Format.printf "crashed client:    (none was busy)@.");
  Format.printf "messages dropped:  %d (%d bytes)@." r.C.Master.dropped_messages
    r.C.Master.dropped_bytes;
  Format.printf "retransmissions:   %d@." retries;
  Format.printf "recoveries:        %d@." r.C.Master.recoveries;
  Format.printf "rederivations:     %d@." r.C.Master.rederivations;
  Format.printf "master crashes:    %d@." r.C.Master.master_crashes;
  Format.printf "false suspicions:  %d@." r.C.Master.false_suspicions;

  Format.printf "@.--- run summary ---@.%a@.@." C.Gridsat.pp_result r;
  let same =
    C.Gridsat.answer_string clean.C.Master.answer = C.Gridsat.answer_string r.C.Master.answer
  in
  Format.printf "verdict unchanged under chaos: %b@." same;
  if not same then exit 1
