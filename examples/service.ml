(* The multi-tenant job service under load: three tenants share one
   8-host pool, submitting a mixed-priority batch that oversubscribes
   it.  The service leases 2 hosts per run, keeps at most 3 runs in
   flight, and holds the rest in a bounded admission queue.

   The script exercises every lifecycle path:
   - a High-priority job submitted late preempts a running Low job
     (the victim is requeued, not lost),
   - one job carries a deadline too tight for its instance and is
     cancelled gracefully — its hosts come straight back to the pool,
   - a burst of Low submissions overflows the queue and is shed with
     retry-after hints,
   - and once the dust settles the whole first batch is resubmitted:
     every instance is served from the verdict cache, with zero
     subproblems dispatched the second time around.

   Run with: dune exec examples/service.exe *)

module C = Gridsat_core
module Svc = Gridsat_service.Service
module Job = Gridsat_service.Job
module W = Workloads

let instance i =
  if i mod 2 = 0 then W.Php.instance ~pigeons:6 ~holes:5
  else W.Random_sat.planted ~nvars:22 ~ratio:5.0 ~seed:(40 + i) ()

let tenant i = [| "alice"; "bob"; "carol" |].(i mod 3)

let show_outcome label = function
  | Svc.Accepted -> Printf.printf "  %-12s accepted\n" label
  | Svc.Cached a -> Printf.printf "  %-12s served from cache: %s\n" label (Job.answer_string a)
  | Svc.Rejected { retry_after } ->
      Printf.printf "  %-12s shed (retry in %.0fs)\n" label retry_after

let () =
  let testbed = C.Testbed.uniform ~n:8 ~speed:500. () in
  let cfg =
    {
      Svc.default_config with
      Svc.hosts_per_job = 2;
      max_concurrent = 3;
      queue_capacity = 8;
      retry_after_base = 15.;
      run = { C.Config.default with C.Config.split_timeout = 5. };
    }
  in
  let svc = Svc.create ~cfg ~testbed () in

  print_endline "-- wave 1: six jobs from three tenants over a 3-run pool --";
  for i = 0 to 5 do
    let priority = if i = 4 then Job.Low else Job.Normal in
    let label = Printf.sprintf "%s/job%d" (tenant i) i in
    show_outcome label (Svc.submit svc ~tenant:(tenant i) ~priority ~label (instance i))
  done;

  (* A deadline the pigeonhole instance cannot meet from the back of the
     queue: the run is cancelled cleanly when it expires. *)
  show_outcome "bob/rush"
    (Svc.submit svc ~tenant:"bob" ~priority:Job.Normal ~deadline_in:2. ~label:"bob/rush"
       (W.Php.instance ~pigeons:7 ~holes:6));

  (* Scripted for later: a High job that lands while the pool is full and
     preempts the weakest running Low job, and a Low burst that overflows
     the queue and gets shed. *)
  Svc.submit_at svc ~at:2. ~tenant:"carol" ~priority:Job.High ~label:"carol/urgent"
    (W.Random_sat.planted ~nvars:22 ~ratio:5.0 ~seed:99 ());
  for i = 0 to 5 do
    Svc.submit_at svc ~at:2.5 ~tenant:"alice" ~priority:Job.Low
      ~label:(Printf.sprintf "alice/burst%d" i)
      (W.Random_sat.planted ~nvars:20 ~ratio:5.0 ~seed:(70 + i) ())
  done;

  Svc.run svc;

  print_endline "\n-- outcomes --";
  List.iter
    (fun (j : Job.t) ->
      match j.Job.state with
      | Job.Done t ->
          Printf.printf "  #%-2d %-14s %-6s %-14s preemptions=%d\n" j.Job.id j.Job.label
            (Job.priority_string j.Job.priority)
            (Job.terminal_string t) j.Job.preemptions
      | _ -> assert false)
    (Svc.jobs svc);

  print_endline "\n-- wave 2: resubmitting wave 1 (everything should hit the cache) --";
  for i = 0 to 5 do
    let label = Printf.sprintf "%s/again%d" (tenant i) i in
    show_outcome label (Svc.submit svc ~tenant:(tenant i) ~priority:Job.Normal ~label (instance i))
  done;

  let s = Svc.stats svc in
  Printf.printf
    "\nsubmitted %d  admitted %d  shed %d  cache-hits %d  deadlines %d  preempted %d  completed %d\n"
    s.Svc.submitted s.Svc.admitted s.Svc.shed s.Svc.cache_hits s.Svc.deadline_expired
    s.Svc.preempted s.Svc.completed;
  Printf.printf "pool: %d/%d hosts free again\n" s.Svc.hosts_free s.Svc.hosts_total
