(* The Table 2 scenario: a hard instance starts on the interactive grid
   while a Blue Horizon batch job waits in the queue; if the problem is
   still open when the allocation arrives, the batch nodes join the
   computation.  Here the instance is sized so the batch nodes matter.

   Run with: dune exec examples/bluehorizon.exe *)

module C = Gridsat_core

let () =
  Format.printf "=== interactive grid + batch-queued Blue Horizon ===@.@.";
  let cnf =
    Workloads.Parity.instance ~nbits:110 ~nsamples:115 ~subset:4 ~corrupted:0 ~seed:1
  in
  Format.printf "instance: planted parity, %d vars (a par32-style problem)@.@."
    (Sat.Cnf.nvars cnf);
  (* a modest interactive pool, and a batch job that arrives after ~60 s *)
  let base = C.Testbed.uniform ~n:3 ~speed:800. () in
  let testbed =
    {
      base with
      C.Testbed.name = "interactive+batch";
      batch =
        Some
          {
            C.Testbed.site = "sdsc";
            nodes = 8;
            node_speed = 4000.;
            node_mem = 1024 * 1024 * 1024;
            duration = 4000.;
            mean_wait = 60.;
            queue_seed = 0;
          };
    }
  in
  let config =
    {
      C.Config.default with
      C.Config.split_timeout = 10.;
      overall_timeout = 20_000.;
      share_max_len = 3 (* the paper's second experiment set *);
    }
  in
  let result = C.Gridsat.solve ~config ~testbed cnf in
  let batchy = function
    | C.Events.Batch_job_submitted _ | C.Events.Batch_job_started _ | C.Events.Batch_job_cancelled
      ->
        true
    | C.Events.Client_started id -> id >= 1000
    | _ -> false
  in
  Format.printf "--- batch-related events ---@.";
  List.iter
    (fun ev -> if batchy ev.C.Events.kind then Format.printf "%a@." C.Events.pp ev)
    result.C.Master.events;
  Format.printf "@.--- run summary ---@.%a@." C.Gridsat.pp_result result;
  match result.C.Master.answer with
  | C.Master.Sat _ ->
      Format.printf "@.solved; if this happened before the batch start, the job was cancelled@."
  | C.Master.Unsat -> Format.printf "@.unsat@."
  | C.Master.Unknown r -> Format.printf "@.no answer: %s@." r
