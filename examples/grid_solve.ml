(* A full GridSAT run on the simulated GrADS testbed, narrated through the
   master's event log — including the five-message split protocol of
   Figure 3.

   Run with: dune exec examples/grid_solve.exe *)

module C = Gridsat_core

let () =
  Format.printf "=== GridSAT on the 34-host GrADS testbed ===@.@.";
  let cnf = Workloads.Php.instance ~pigeons:8 ~holes:7 in
  Format.printf "instance: pigeonhole 8/7 (%d vars, %d clauses)@.@." (Sat.Cnf.nvars cnf)
    (Sat.Cnf.nclauses cnf);
  let testbed = C.Testbed.grads () in
  let config =
    {
      C.Config.default with
      C.Config.split_timeout = 5.;
      slice = 1.0;
      share_flush_interval = 2.0;
      overall_timeout = 100_000.;
    }
  in
  let result = C.Gridsat.solve ~config ~testbed cnf in

  Format.printf "--- event log (first 40 events) ---@.";
  List.iteri
    (fun i ev -> if i < 40 then Format.printf "%a@." C.Events.pp ev)
    result.C.Master.events;
  let n = List.length result.C.Master.events in
  if n > 40 then Format.printf "... (%d more events)@." (n - 40);

  Format.printf "@.--- run summary ---@.%a@." C.Gridsat.pp_result result;

  (* highlight one complete Figure 3 message sequence *)
  Format.printf "@.--- the Figure 3 split protocol, as logged ---@.";
  let interesting = function
    | C.Events.Split_requested _ | C.Events.Split_granted _ | C.Events.Split_completed _
    | C.Events.Problem_assigned _ ->
        true
    | _ -> false
  in
  let protocol = List.filter (fun e -> interesting e.C.Events.kind) result.C.Master.events in
  List.iteri (fun i ev -> if i < 8 then Format.printf "%a@." C.Events.pp ev) protocol
