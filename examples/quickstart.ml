(* Quickstart: build a formula, solve it sequentially, then solve a harder
   one on a small simulated grid, and finally on real domains.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A formula from DIMACS text. *)
  let dimacs = "c (x1 | ~x2) & (x2 | x3) & (~x1 | ~x3)\np cnf 3 3\n1 -2 0\n2 3 0\n-1 -3 0\n" in
  let cnf = Sat.Dimacs.parse_string dimacs in
  Format.printf "--- sequential solve ---@.";
  (match Sat.Solver.solve (Sat.Solver.create cnf) with
  | Sat.Solver.Sat model ->
      Format.printf "SAT, model: %a@." Sat.Model.pp model;
      assert (Sat.Model.satisfies cnf model)
  | Sat.Solver.Unsat -> Format.printf "UNSAT@."
  | Sat.Solver.Budget_exhausted | Sat.Solver.Mem_pressure -> assert false);

  (* 2. A pigeonhole instance on a simulated 8-host grid. *)
  Format.printf "@.--- GridSAT on a simulated 8-host grid ---@.";
  let hard = Workloads.Php.instance ~pigeons:9 ~holes:8 in
  let testbed = Gridsat_core.Testbed.uniform ~n:8 ~speed:2000. () in
  let config =
    { Gridsat_core.Config.default with Gridsat_core.Config.split_timeout = 5. }
  in
  let result = Gridsat_core.Gridsat.solve ~config ~testbed hard in
  Format.printf "%a@." Gridsat_core.Gridsat.pp_result result;

  (* 3. The same instance on real OCaml domains. *)
  Format.printf "@.--- parallel solve on OCaml domains ---@.";
  let outcome, stats = Par.Par_solver.solve ~num_domains:4 hard in
  Format.printf "answer: %s (domains %d, splits %d, shared clauses %d)@."
    (match outcome with
    | Par.Par_solver.Sat _ -> "SAT"
    | Par.Par_solver.Unsat -> "UNSAT"
    | Par.Par_solver.Budget_exhausted -> "BUDGET")
    stats.Par.Par_solver.domains stats.Par.Par_solver.splits
    stats.Par.Par_solver.shared_clauses
